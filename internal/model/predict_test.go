package model

import (
	"math"
	"testing"

	"codedterasort/internal/stats"
)

// Published baselines (Tables II/III TeraSort rows).
func baseK16() stats.Breakdown { return stats.Seconds(0, 1.86, 2.35, 945.72, 0.85, 10.47) }
func baseK20() stats.Breakdown { return stats.Seconds(0, 1.47, 2.00, 960.07, 0.62, 8.29) }

func TestPredictCodedMatchesPublishedRows(t *testing.T) {
	// The closed-form prediction from the published TeraSort row alone
	// lands within 20% of every published coded total and speedup.
	cases := []struct {
		base     stats.Breakdown
		k, r     int
		totalSec float64
		speedup  float64
	}{
		{baseK16(), 16, 3, 445.56, 2.16},
		{baseK16(), 16, 5, 283.33, 3.39},
		{baseK20(), 20, 3, 493.86, 1.97},
		{baseK20(), 20, 5, 441.10, 2.20},
	}
	ov := DefaultOverheads()
	for _, c := range cases {
		pred := PredictCoded(c.base, c.k, c.r, ov)
		got := pred.Total().Seconds()
		if math.Abs(got/c.totalSec-1) > 0.20 {
			t.Fatalf("K=%d r=%d: predicted total %.1f vs paper %.1f", c.k, c.r, got, c.totalSec)
		}
		sp := PredictSpeedup(c.base, c.k, c.r, ov)
		if math.Abs(sp/c.speedup-1) > 0.20 {
			t.Fatalf("K=%d r=%d: predicted speedup %.2f vs paper %.2f", c.k, c.r, sp, c.speedup)
		}
	}
}

func TestPredictShuffleCellsClosely(t *testing.T) {
	// The shuffle stage is pure theory (load ratio x multicast penalty)
	// and lands within 16% of all four published shuffle cells (the K=16,
	// r=5 cell is the worst: the paper's own shuffle gain there slightly
	// exceeds what a single gamma fits).
	cases := []struct {
		base    stats.Breakdown
		k, r    int
		shuffle float64
	}{
		{baseK16(), 16, 3, 412.22},
		{baseK16(), 16, 5, 222.83},
		{baseK20(), 20, 3, 453.37},
		{baseK20(), 20, 5, 269.42},
	}
	for _, c := range cases {
		pred := PredictCoded(c.base, c.k, c.r, DefaultOverheads())
		got := pred[stats.StageShuffle].Seconds()
		if math.Abs(got/c.shuffle-1) > 0.16 {
			t.Fatalf("K=%d r=%d: predicted shuffle %.1f vs paper %.1f", c.k, c.r, got, c.shuffle)
		}
	}
}

func TestPredictMonotoneInGamma(t *testing.T) {
	ov := DefaultOverheads()
	low := PredictCoded(baseK16(), 16, 3, ov)
	ov.Gamma = 1.0
	high := PredictCoded(baseK16(), 16, 3, ov)
	if high[stats.StageShuffle] <= low[stats.StageShuffle] {
		t.Fatalf("gamma penalty not monotone")
	}
}

func TestPredictR1IsNearBaselinePlusCodeGen(t *testing.T) {
	// r=1: no redundancy; prediction reduces to the baseline (up to the
	// multicast factor being 1 and the small CodeGen/memory terms).
	base := baseK16()
	pred := PredictCoded(base, 16, 1, DefaultOverheads())
	if pred[stats.StageMap] != base[stats.StageMap] {
		t.Fatalf("map changed at r=1")
	}
	if pred[stats.StageShuffle] != base[stats.StageShuffle] {
		t.Fatalf("shuffle changed at r=1: %v vs %v", pred[stats.StageShuffle], base[stats.StageShuffle])
	}
}
