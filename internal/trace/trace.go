// Package trace records transport-level events (sends and receives with
// timestamps, peers, tags and sizes) so schedules can be inspected and
// asserted on: the serial one-sender-at-a-time shuffles of Fig 9, the
// multicast fan-out of coded packets, or the burst pattern of the CodeGen
// handshake. A Recorder wraps any transport.Conn; several Recorders sharing
// one Clock produce a cluster-wide timeline.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"codedterasort/internal/stats"
	"codedterasort/internal/transport"
)

// Kind classifies an event.
type Kind int

const (
	// KindSend is a completed Send call.
	KindSend Kind = iota
	// KindRecv is a completed Recv call.
	KindRecv
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one recorded transport operation.
type Event struct {
	At    time.Duration // clock time at completion
	Node  int           // rank that performed the operation
	Kind  Kind
	Peer  int
	Tag   transport.Tag
	Bytes int
}

// String renders the event as one log line.
func (e Event) String() string {
	arrow := "->"
	if e.Kind == KindRecv {
		arrow = "<-"
	}
	return fmt.Sprintf("%12v node %2d %s %2d  tag=%#x  %d B", e.At, e.Node, arrow, e.Peer, uint64(e.Tag), e.Bytes)
}

// Recorder wraps a Conn and records its operations against a shared clock.
// It keeps at most capacity events (oldest dropped first).
type Recorder struct {
	inner    transport.Conn
	clock    stats.Clock
	capacity int

	mu      sync.Mutex
	events  []Event
	dropped int64
}

// New wraps c with event recording. capacity <= 0 selects a default of
// 65536 events.
func New(c transport.Conn, clock stats.Clock, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 65536
	}
	return &Recorder{inner: c, clock: clock, capacity: capacity}
}

// Rank implements transport.Conn.
func (r *Recorder) Rank() int { return r.inner.Rank() }

// Size implements transport.Conn.
func (r *Recorder) Size() int { return r.inner.Size() }

// Send implements transport.Conn, recording the event on success.
func (r *Recorder) Send(to int, tag transport.Tag, payload []byte) error {
	if err := r.inner.Send(to, tag, payload); err != nil {
		return err
	}
	r.record(Event{At: r.clock.Now(), Node: r.Rank(), Kind: KindSend, Peer: to, Tag: tag, Bytes: len(payload)})
	return nil
}

// Recv implements transport.Conn, recording the event on success.
func (r *Recorder) Recv(from int, tag transport.Tag) ([]byte, error) {
	p, err := r.inner.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	r.record(Event{At: r.clock.Now(), Node: r.Rank(), Kind: KindRecv, Peer: from, Tag: tag, Bytes: len(p)})
	return p, nil
}

// Close implements transport.Conn.
func (r *Recorder) Close() error { return r.inner.Close() }

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	if len(r.events) >= r.capacity {
		r.events = r.events[1:]
		r.dropped++
	}
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a snapshot of the recorded events in record order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Dropped returns how many events were evicted by the capacity bound.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Summary aggregates a set of events.
type Summary struct {
	Sends     int
	Recvs     int
	SentBytes int64
	RecvBytes int64
}

// Summarize folds events into totals.
func Summarize(events []Event) Summary {
	var s Summary
	for _, e := range events {
		switch e.Kind {
		case KindSend:
			s.Sends++
			s.SentBytes += int64(e.Bytes)
		case KindRecv:
			s.Recvs++
			s.RecvBytes += int64(e.Bytes)
		}
	}
	return s
}

// Merge combines the timelines of several recorders into one sequence
// ordered by timestamp (stable for equal times).
func Merge(recorders ...*Recorder) []Event {
	var all []Event
	for _, r := range recorders {
		all = append(all, r.Events()...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}

// Write dumps events as text, one line each.
func Write(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// StageRecord is one node's completed stage execution, reported through
// the engine runtime's per-stage hooks — the stage-level counterpart of
// the transport-level Event.
type StageRecord struct {
	// At is the clock time at stage completion.
	At time.Duration
	// Attempt is the recovery attempt the stage ran under (1 for a job's
	// first execution; higher after straggler/failure re-execution).
	Attempt int
	// Node is the rank that ran the stage.
	Node int
	// Stage is the timeline column the stage was charged to.
	Stage stats.Stage
	// Elapsed is the stage's measured duration.
	Elapsed time.Duration
	// Err is the stage error text ("" = success).
	Err string
}

// String renders the record as one log line.
func (r StageRecord) String() string {
	s := fmt.Sprintf("%12v node %2d stage %-13s %12v", r.At, r.Node, r.Stage, r.Elapsed)
	if r.Attempt > 1 {
		s += fmt.Sprintf("  attempt %d", r.Attempt)
	}
	if r.Err != "" {
		s += "  ERR " + r.Err
	}
	return s
}

// StageLog collects StageRecords from several nodes against a shared
// clock. It is the sink the cluster runtime wires into the engines'
// per-stage hooks, replacing inline instrumentation.
type StageLog struct {
	clock stats.Clock

	mu       sync.Mutex
	attempt  int
	records  []StageRecord
	observer func(StageRecord)
}

// NewStageLog returns an empty log stamping records with clock; records
// carry attempt number 1 until NewAttempt is called.
func NewStageLog(clock stats.Clock) *StageLog {
	return &StageLog{clock: clock, attempt: 1}
}

// NewAttempt advances the attempt number stamped on subsequent records and
// returns it — called by the cluster supervisor when straggler/failure
// recovery re-executes a job, so one log holds the whole recovery timeline
// (the failed attempt's partial records included).
func (l *StageLog) NewAttempt() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.attempt++
	return l.attempt
}

// Observe registers fn to receive every record as it is appended, after
// the log's own bookkeeping. It is how live consumers (job status, metrics
// exposition) ride the same hook chain as the log without a second wiring
// path. fn runs on the recording goroutine, outside the log's lock.
func (l *StageLog) Observe(fn func(StageRecord)) {
	l.mu.Lock()
	l.observer = fn
	l.mu.Unlock()
}

// Record appends one completed stage. Safe for concurrent use by all
// worker goroutines of an in-process cluster.
func (l *StageLog) Record(node int, stage stats.Stage, elapsed time.Duration, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	l.mu.Lock()
	rec := StageRecord{
		At: l.clock.Now(), Attempt: l.attempt, Node: node, Stage: stage, Elapsed: elapsed, Err: msg,
	}
	l.records = append(l.records, rec)
	observer := l.observer
	l.mu.Unlock()
	if observer != nil {
		observer(rec)
	}
}

// Records returns a snapshot in completion order (ties in record order).
func (l *StageLog) Records() []StageRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]StageRecord(nil), l.records...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// StageTotal aggregates the executions of one stage across nodes, jobs and
// recovery attempts: run/error counts and summed stage seconds.
type StageTotal struct {
	// Runs counts completed executions (errored ones included).
	Runs int64
	// Errors counts executions that ended in a stage error.
	Errors int64
	// Seconds is the summed elapsed time of all runs.
	Seconds float64
}

// StageTotals is the per-stage rollup of a stage timeline — the
// exposition-friendly form behind a metrics endpoint, where individual
// records would be unbounded but per-stage counters are not.
type StageTotals map[stats.Stage]StageTotal

// Add folds one record into the totals.
func (t StageTotals) Add(rec StageRecord) {
	tot := t[rec.Stage]
	tot.Runs++
	if rec.Err != "" {
		tot.Errors++
	}
	tot.Seconds += rec.Elapsed.Seconds()
	t[rec.Stage] = tot
}

// TotalsOf rolls a set of records up into per-stage totals.
func TotalsOf(records []StageRecord) StageTotals {
	t := StageTotals{}
	for _, rec := range records {
		t.Add(rec)
	}
	return t
}

// SenderOrder returns the distinct sender ranks of the send events in
// first-appearance order — the tool for asserting the Fig 9 serial
// schedule (senders must appear in rank order, each completing before the
// next begins).
func SenderOrder(events []Event, tagFilter func(transport.Tag) bool) []int {
	var order []int
	seen := map[int]bool{}
	for _, e := range events {
		if e.Kind != KindSend || (tagFilter != nil && !tagFilter(e.Tag)) {
			continue
		}
		if !seen[e.Node] {
			seen[e.Node] = true
			order = append(order, e.Node)
		}
	}
	return order
}
