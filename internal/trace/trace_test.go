package trace

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"codedterasort/internal/coded"
	"codedterasort/internal/kv"
	"codedterasort/internal/stats"
	"codedterasort/internal/terasort"
	"codedterasort/internal/transport"
	"codedterasort/internal/transport/memnet"
)

func TestRecorderCapturesSendRecv(t *testing.T) {
	mesh := memnet.NewMesh(2)
	defer mesh.Close()
	clock := stats.NewWallClock()
	a := New(mesh.Endpoint(0), clock, 0)
	b := New(mesh.Endpoint(1), clock, 0)
	if err := a.Send(1, 5, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(0, 5); err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Events(), b.Events()
	if len(ea) != 1 || ea[0].Kind != KindSend || ea[0].Peer != 1 || ea[0].Bytes != 3 {
		t.Fatalf("send event wrong: %+v", ea)
	}
	if len(eb) != 1 || eb[0].Kind != KindRecv || eb[0].Peer != 0 {
		t.Fatalf("recv event wrong: %+v", eb)
	}
	if a.Rank() != 0 || a.Size() != 2 {
		t.Fatalf("metadata wrong")
	}
}

func TestCapacityEviction(t *testing.T) {
	mesh := memnet.NewMesh(2)
	defer mesh.Close()
	r := New(mesh.Endpoint(0), stats.NewWallClock(), 3)
	for i := 0; i < 5; i++ {
		if err := r.Send(1, transport.Tag(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("kept %d events", len(events))
	}
	if events[0].Tag != 2 {
		t.Fatalf("oldest kept tag = %v, want 2", events[0].Tag)
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d", r.Dropped())
	}
}

func TestSummarizeAndWrite(t *testing.T) {
	events := []Event{
		{Kind: KindSend, Bytes: 10, Node: 0, Peer: 1},
		{Kind: KindSend, Bytes: 20, Node: 0, Peer: 2},
		{Kind: KindRecv, Bytes: 30, Node: 0, Peer: 1},
	}
	s := Summarize(events)
	if s.Sends != 2 || s.SentBytes != 30 || s.Recvs != 1 || s.RecvBytes != 30 {
		t.Fatalf("summary %+v", s)
	}
	var sb strings.Builder
	if err := Write(&sb, events); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "node  0 ->  2") {
		t.Fatalf("dump missing send line:\n%s", sb.String())
	}
}

// TestFig9aSerialScheduleObserved traces a real TeraSort shuffle and
// asserts the Fig 9(a) property: shuffle senders take the wire strictly in
// rank order.
func TestFig9aSerialScheduleObserved(t *testing.T) {
	const k = 4
	mesh := memnet.NewMesh(k)
	defer mesh.Close()
	clock := stats.NewWallClock()
	recorders := make([]*Recorder, k)
	var wg sync.WaitGroup
	for rank := 0; rank < k; rank++ {
		recorders[rank] = New(mesh.Endpoint(rank), clock, 0)
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ep := transport.WithCollectives(recorders[rank], transport.BcastSequential)
			cfg := terasort.Config{K: k, Rows: 2000, Seed: 3}
			if _, err := terasort.Run(ep, cfg, nil); err != nil {
				t.Error(err)
			}
		}(rank)
	}
	wg.Wait()

	all := Merge(recorders...)
	// Shuffle payload sends carry stage byte 0x10 in the tag and a
	// non-empty payload.
	isShuffle := func(tag transport.Tag) bool { return uint8(tag>>32) == 0x10 }
	var shuffleSends []Event
	for _, e := range all {
		if e.Kind == KindSend && isShuffle(e.Tag) && e.Bytes > 0 {
			shuffleSends = append(shuffleSends, e)
		}
	}
	if len(shuffleSends) != k*(k-1) {
		t.Fatalf("%d shuffle sends, want %d", len(shuffleSends), k*(k-1))
	}
	order := SenderOrder(shuffleSends, nil)
	for i, rank := range order {
		if rank != i {
			t.Fatalf("senders out of rank order: %v", order)
		}
	}
	// Strict serialization: all of rank i's sends complete before rank
	// i+1's first send (token-chained schedule).
	lastOf := map[int]int{}
	firstOf := map[int]int{}
	for i, e := range shuffleSends {
		if _, ok := firstOf[e.Node]; !ok {
			firstOf[e.Node] = i
		}
		lastOf[e.Node] = i
	}
	for rank := 0; rank < k-1; rank++ {
		if lastOf[rank] > firstOf[rank+1] {
			t.Fatalf("rank %d still sending after rank %d started", rank, rank+1)
		}
	}
	// Sanity: trace totals match the metered expectation of (K-1)/K data.
	sum := Summarize(shuffleSends)
	want := int64(2000 * kv.RecordSize * (k - 1) / k)
	if sum.SentBytes < want*95/100 || sum.SentBytes > want*105/100 {
		t.Fatalf("traced shuffle bytes %d, want about %d", sum.SentBytes, want)
	}
}

func TestKindString(t *testing.T) {
	if KindSend.String() != "send" || KindRecv.String() != "recv" {
		t.Fatalf("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatalf("unknown kind renders empty")
	}
}

// TestFig9bSerialMulticastObserved traces a CodedTeraSort multicast
// shuffle and asserts the Fig 9(b) property: multicast roots take the
// wire strictly in rank order, each finishing its groups before the next
// root starts.
func TestFig9bSerialMulticastObserved(t *testing.T) {
	const k, r = 4, 2
	mesh := memnet.NewMesh(k)
	defer mesh.Close()
	clock := stats.NewWallClock()
	recorders := make([]*Recorder, k)
	var wg sync.WaitGroup
	for rank := 0; rank < k; rank++ {
		recorders[rank] = New(mesh.Endpoint(rank), clock, 0)
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ep := transport.WithCollectives(recorders[rank], transport.BcastSequential)
			cfg := coded.Config{K: k, R: r, Rows: 2000, Seed: 4}
			if _, err := coded.Run(ep, cfg, nil); err != nil {
				t.Error(err)
			}
		}(rank)
	}
	wg.Wait()

	all := Merge(recorders...)
	// Multicast payload sends carry stage byte 0x21 in the top tag byte.
	var mcasts []Event
	for _, e := range all {
		if e.Kind == KindSend && uint8(e.Tag>>56) == 0x21 {
			mcasts = append(mcasts, e)
		}
	}
	// Each node roots C(K-1, r) = 3 groups and unicasts each packet to r
	// receivers: 4 * 3 * 2 = 24 wire sends.
	if len(mcasts) != 24 {
		t.Fatalf("%d multicast sends, want 24", len(mcasts))
	}
	order := SenderOrder(mcasts, nil)
	for i, rank := range order {
		if rank != i {
			t.Fatalf("multicast roots out of rank order: %v", order)
		}
	}
	lastOf := map[int]int{}
	firstOf := map[int]int{}
	for i, e := range mcasts {
		if _, ok := firstOf[e.Node]; !ok {
			firstOf[e.Node] = i
		}
		lastOf[e.Node] = i
	}
	for rank := 0; rank < k-1; rank++ {
		if lastOf[rank] > firstOf[rank+1] {
			t.Fatalf("root %d still multicasting after root %d started", rank, rank+1)
		}
	}
}

// TestStageLog: records from several nodes merge into completion order,
// errors are captured as text, and String renders one line per record.
func TestStageLog(t *testing.T) {
	clock := &stats.VirtualClock{}
	log := NewStageLog(clock)
	clock.Advance(10 * time.Millisecond)
	log.Record(1, stats.StageMap, 3*time.Millisecond, nil)
	clock.Advance(10 * time.Millisecond)
	log.Record(0, stats.StageMap, 5*time.Millisecond, errors.New("boom"))

	recs := log.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	if recs[0].Node != 1 || recs[0].At != 10*time.Millisecond || recs[0].Err != "" {
		t.Fatalf("first record: %+v", recs[0])
	}
	if recs[1].Node != 0 || recs[1].Err != "boom" {
		t.Fatalf("second record: %+v", recs[1])
	}
	if s := recs[1].String(); !strings.Contains(s, "Map") || !strings.Contains(s, "ERR boom") {
		t.Fatalf("render: %q", s)
	}
}

// TestStageLogConcurrent: concurrent per-worker hook calls are safe and
// all land.
func TestStageLogConcurrent(t *testing.T) {
	log := NewStageLog(stats.NewWallClock())
	var wg sync.WaitGroup
	for n := 0; n < 8; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for s := stats.StageCodeGen; s < stats.NumStages; s++ {
				log.Record(n, s, time.Microsecond, nil)
			}
		}(n)
	}
	wg.Wait()
	if got := len(log.Records()); got != 8*int(stats.NumStages) {
		t.Fatalf("%d records, want %d", got, 8*int(stats.NumStages))
	}
}
