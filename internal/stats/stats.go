// Package stats provides the measurement substrate: a Clock abstraction so
// the same stage drivers run under wall-clock time (real transports) or
// virtual time (the simnet used to regenerate the EC2-scale tables),
// per-stage timelines, and rendering of the paper's result tables
// (Tables I, II and III all share the column layout
// CodeGen | Map | Pack/Encode | Shuffle | Unpack/Decode | Reduce | Total).
package stats

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// Clock reports elapsed time since an arbitrary epoch. Implementations:
// WallClock (real time) and VirtualClock (simulated time advanced by the
// simnet cost model).
type Clock interface {
	Now() time.Duration
}

// WallClock measures real elapsed time from its creation.
type WallClock struct {
	epoch time.Time
}

// NewWallClock returns a wall clock with epoch now.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now implements Clock.
func (w *WallClock) Now() time.Duration { return time.Since(w.epoch) }

// VirtualClock is a manually advanced clock. It is safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Duration
}

// Now implements Clock.
func (v *VirtualClock) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d and returns the new time.
// Negative advances panic: simulated time is monotone.
func (v *VirtualClock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic("stats: negative clock advance")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now += d
	return v.now
}

// AdvanceTo moves the clock to t if t is later than the current time and
// returns the (possibly unchanged) clock value.
func (v *VirtualClock) AdvanceTo(t time.Duration) time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t > v.now {
		v.now = t
	}
	return v.now
}

// Stage identifies one phase of either sorting algorithm. TeraSort uses
// Map/Pack/Shuffle/Unpack/Reduce; CodedTeraSort uses CodeGen/Map/Encode/
// MulticastShuffle/Decode/Reduce. The paper's tables align Pack with Encode
// and Unpack with Decode, so both algorithms share the same axis here.
type Stage int

// The canonical stage axis, in execution order.
const (
	StageCodeGen Stage = iota
	StageMap
	StagePack // Encode for CodedTeraSort
	StageShuffle
	StageUnpack // Decode for CodedTeraSort
	StageReduce
	NumStages
)

// String returns the table-column name of the stage.
func (s Stage) String() string {
	switch s {
	case StageCodeGen:
		return "CodeGen"
	case StageMap:
		return "Map"
	case StagePack:
		return "Pack/Encode"
	case StageShuffle:
		return "Shuffle"
	case StageUnpack:
		return "Unpack/Decode"
	case StageReduce:
		return "Reduce"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// ParseStage parses a stage name back to its axis position. It accepts the
// table-column names String renders plus the per-engine aliases the paper
// uses ("Pack" or "Encode" for the coding column, "Unpack" or "Decode" for
// its inverse) — the form job specs and CLI flags name fault stages in.
func ParseStage(name string) (Stage, error) {
	switch name {
	case "CodeGen":
		return StageCodeGen, nil
	case "Map":
		return StageMap, nil
	case "Pack", "Encode", "Pack/Encode":
		return StagePack, nil
	case "Shuffle":
		return StageShuffle, nil
	case "Unpack", "Decode", "Unpack/Decode":
		return StageUnpack, nil
	case "Reduce", "Sort":
		return StageReduce, nil
	default:
		return 0, fmt.Errorf("stats: unknown stage %q", name)
	}
}

// SpillStats accounts external-sort spill volume — sorted runs and shuffle
// spools alike — as the raw record bytes handed to spill writers versus the
// framed bytes that actually landed on disk. The two differ when the
// compact prefix-truncated block format (extsort's v2 "CTS2" frames) wins:
// the gap is the spill-I/O saving. Workers accumulate it per job; the
// cluster and the serving layer sum it into JobReport and /metrics.
type SpillStats struct {
	RawBytes  int64 `json:"raw_bytes"`
	DiskBytes int64 `json:"disk_bytes"`
}

// Add accumulates o into s.
func (s *SpillStats) Add(o SpillStats) {
	s.RawBytes += o.RawBytes
	s.DiskBytes += o.DiskBytes
}

// Breakdown holds one duration per stage.
type Breakdown [NumStages]time.Duration

// Total returns the sum over all stages.
func (b Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// Max returns the element-wise maximum of two breakdowns. Because stages
// are separated by barriers (the paper executes stages synchronously,
// Section VI), the cluster-level stage time is the maximum over nodes.
func (b Breakdown) Max(o Breakdown) Breakdown {
	out := b
	for i, d := range o {
		if d > out[i] {
			out[i] = d
		}
	}
	return out
}

// Add returns the element-wise sum (used for averaging repeated runs).
func (b Breakdown) Add(o Breakdown) Breakdown {
	out := b
	for i, d := range o {
		out[i] += d
	}
	return out
}

// Scale returns the breakdown with every stage multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	var out Breakdown
	for i, d := range b {
		out[i] = time.Duration(float64(d) * f)
	}
	return out
}

// MarshalBinary encodes the breakdown as NumStages big-endian int64
// nanosecond values, the wire format workers use to report to the
// coordinator.
func (b Breakdown) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8*NumStages)
	for i, d := range b {
		binary.BigEndian.PutUint64(out[8*i:], uint64(d.Nanoseconds()))
	}
	return out, nil
}

// UnmarshalBinary decodes the MarshalBinary format.
func (b *Breakdown) UnmarshalBinary(p []byte) error {
	if len(p) != 8*int(NumStages) {
		return fmt.Errorf("stats: breakdown payload of %d bytes, want %d", len(p), 8*NumStages)
	}
	for i := range b {
		b[i] = time.Duration(binary.BigEndian.Uint64(p[8*i:]))
	}
	return nil
}

// Timeline accumulates per-stage durations against a Clock. It is used by
// one node for one run; merge node timelines with Breakdown.Max.
type Timeline struct {
	clock Clock
	mu    sync.Mutex
	b     Breakdown
}

// NewTimeline returns an empty timeline over the clock.
func NewTimeline(clock Clock) *Timeline { return &Timeline{clock: clock} }

// Clock returns the clock the timeline measures against, so external stage
// drivers (the engine runtime's per-stage hooks) time against the same
// wall or virtual time the timeline is charged in.
func (t *Timeline) Clock() Clock { return t.clock }

// Measure runs fn and charges its elapsed clock time to stage.
func (t *Timeline) Measure(stage Stage, fn func() error) error {
	start := t.clock.Now()
	err := fn()
	t.AddDuration(stage, t.clock.Now()-start)
	return err
}

// AddDuration charges d to stage directly (used when the duration comes
// from the simulator's cost model rather than from timing a closure).
func (t *Timeline) AddDuration(stage Stage, d time.Duration) {
	if stage < 0 || stage >= NumStages {
		panic(fmt.Sprintf("stats: invalid stage %d", stage))
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.b[stage] += d
	t.mu.Unlock()
}

// Breakdown returns a snapshot of the accumulated durations.
func (t *Timeline) Breakdown() Breakdown {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.b
}
