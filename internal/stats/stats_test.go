package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWallClockMonotone(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	time.Sleep(time.Millisecond)
	if b := c.Now(); b <= a {
		t.Fatalf("clock went backwards: %v then %v", a, b)
	}
}

func TestVirtualClock(t *testing.T) {
	var v VirtualClock
	if v.Now() != 0 {
		t.Fatalf("zero clock not at 0")
	}
	if got := v.Advance(3 * time.Second); got != 3*time.Second {
		t.Fatalf("Advance = %v", got)
	}
	if got := v.AdvanceTo(2 * time.Second); got != 3*time.Second {
		t.Fatalf("AdvanceTo backwards moved the clock: %v", got)
	}
	if got := v.AdvanceTo(5 * time.Second); got != 5*time.Second {
		t.Fatalf("AdvanceTo = %v", got)
	}
}

func TestVirtualClockPanicsOnNegativeAdvance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	var v VirtualClock
	v.Advance(-time.Second)
}

func TestVirtualClockConcurrent(t *testing.T) {
	var v VirtualClock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if v.Now() != 8000*time.Nanosecond {
		t.Fatalf("lost advances: %v", v.Now())
	}
}

func TestStageNames(t *testing.T) {
	want := []string{"CodeGen", "Map", "Pack/Encode", "Shuffle", "Unpack/Decode", "Reduce"}
	for s := StageCodeGen; s < NumStages; s++ {
		if s.String() != want[s] {
			t.Fatalf("stage %d = %q, want %q", s, s.String(), want[s])
		}
	}
}

func TestBreakdownTotalMaxAddScale(t *testing.T) {
	a := Seconds(1, 2, 3, 4, 5, 6)
	if a.Total() != 21*time.Second {
		t.Fatalf("Total = %v", a.Total())
	}
	b := Seconds(6, 5, 4, 3, 2, 1)
	m := a.Max(b)
	if m != Seconds(6, 5, 4, 4, 5, 6) {
		t.Fatalf("Max = %v", m)
	}
	s := a.Add(b)
	if s.Total() != 42*time.Second {
		t.Fatalf("Add total = %v", s.Total())
	}
	h := a.Scale(0.5)
	if h[StageMap] != time.Second {
		t.Fatalf("Scale = %v", h)
	}
}

func TestBreakdownWireRoundTrip(t *testing.T) {
	a := Seconds(0.5, 1.25, 0, 99.75, 3, 0.01)
	p, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b Breakdown
	if err := b.UnmarshalBinary(p); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("roundtrip: %v != %v", a, b)
	}
	if err := b.UnmarshalBinary(p[:10]); err == nil {
		t.Fatalf("truncated payload accepted")
	}
}

func TestTimelineMeasure(t *testing.T) {
	var v VirtualClock
	tl := NewTimeline(&v)
	err := tl.Measure(StageMap, func() error {
		v.Advance(2 * time.Second)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Breakdown()[StageMap]; got != 2*time.Second {
		t.Fatalf("Map time = %v", got)
	}
}

func TestTimelineAccumulates(t *testing.T) {
	var v VirtualClock
	tl := NewTimeline(&v)
	tl.AddDuration(StageShuffle, time.Second)
	tl.AddDuration(StageShuffle, 2*time.Second)
	if got := tl.Breakdown()[StageShuffle]; got != 3*time.Second {
		t.Fatalf("accumulated = %v", got)
	}
}

func TestTimelineClampsNegative(t *testing.T) {
	tl := NewTimeline(NewWallClock())
	tl.AddDuration(StageReduce, -5*time.Second)
	if got := tl.Breakdown()[StageReduce]; got != 0 {
		t.Fatalf("negative duration stored: %v", got)
	}
}

func TestTimelinePanicsOnBadStage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewTimeline(NewWallClock()).AddDuration(NumStages, time.Second)
}

func TestRenderTableMatchesPaperLayout(t *testing.T) {
	// Reproduce the shape of Table II's first two rows.
	rows := []Row{
		{Label: "TeraSort", Times: Seconds(0, 1.86, 2.35, 945.72, 0.85, 10.47)},
		{Label: "CodedTeraSort r=3", Times: Seconds(6.06, 6.03, 5.79, 412.22, 2.41, 13.05), Speedup: 2.16},
	}
	out := RenderTable("Table II", rows)
	for _, want := range []string{
		"Table II", "CodeGen", "Pack/Encode", "Unpack/Decode",
		"945.72", "961.25", "445.56", "2.16x",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	// TeraSort's CodeGen cell renders as "-".
	lines := strings.Split(out, "\n")
	var teraLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "TeraSort") {
			teraLine = l
		}
	}
	if !strings.Contains(teraLine, "-") {
		t.Fatalf("TeraSort row should show '-' for CodeGen: %q", teraLine)
	}
}

func TestRenderTableEmptySpeedup(t *testing.T) {
	out := RenderTable("", []Row{{Label: "X", Times: Seconds(0, 1, 1, 1, 1, 1)}})
	if strings.Contains(out, "x\n") && strings.Contains(out, "0.00x") {
		t.Fatalf("zero speedup should be hidden:\n%s", out)
	}
}

func TestSecondsHelper(t *testing.T) {
	b := Seconds(1, 2, 3, 4, 5, 6)
	if b[StageCodeGen] != time.Second || b[StageReduce] != 6*time.Second {
		t.Fatalf("Seconds mapping wrong: %v", b)
	}
}
