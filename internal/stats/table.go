package stats

import (
	"fmt"
	"strings"
	"time"
)

// Row is one line of a result table: an algorithm label, its stage
// breakdown, and an optional speedup against the table's baseline.
type Row struct {
	Label string
	Times Breakdown
	// Speedup of the baseline total over this row's total; 0 hides the cell.
	Speedup float64
}

// RenderTable formats rows in the layout of the paper's Tables I-III:
//
//	                    CodeGen     Map  Pack/Encode  Shuffle  ...  Total  Speedup
//	TeraSort                  -    1.86         2.35   945.72  ...
//
// Durations print as seconds with two decimals; zero CodeGen renders as "-"
// (TeraSort has no CodeGen stage).
func RenderTable(title string, rows []Row) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelWidth := len("Algorithm")
	for _, r := range rows {
		if len(r.Label) > labelWidth {
			labelWidth = len(r.Label)
		}
	}
	cols := []string{"CodeGen", "Map", "Pack/Encode", "Shuffle", "Unpack/Decode", "Reduce", "Total", "Speedup"}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
		if widths[i] < 8 {
			widths[i] = 8
		}
	}
	fmt.Fprintf(&b, "%-*s", labelWidth, "Algorithm")
	for i, c := range cols {
		fmt.Fprintf(&b, "  %*s", widths[i], c)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", labelWidth+2*len(cols)+sum(widths)))
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s", labelWidth, r.Label)
		for i := StageCodeGen; i < NumStages; i++ {
			cell := formatSeconds(r.Times[i])
			if i == StageCodeGen && r.Times[i] == 0 {
				cell = "-"
			}
			fmt.Fprintf(&b, "  %*s", widths[i], cell)
		}
		fmt.Fprintf(&b, "  %*s", widths[NumStages], formatSeconds(r.Times.Total()))
		if r.Speedup > 0 {
			fmt.Fprintf(&b, "  %*s", widths[NumStages+1], fmt.Sprintf("%.2fx", r.Speedup))
		} else {
			fmt.Fprintf(&b, "  %*s", widths[NumStages+1], "")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatSeconds(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Seconds builds a Breakdown from per-stage second values in stage order
// (CodeGen, Map, Pack, Shuffle, Unpack, Reduce) — convenient for encoding
// the paper's published numbers in tests and EXPERIMENTS.md generators.
func Seconds(codegen, mapS, pack, shuffle, unpack, reduce float64) Breakdown {
	toDur := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	return Breakdown{
		StageCodeGen: toDur(codegen),
		StageMap:     toDur(mapS),
		StagePack:    toDur(pack),
		StageShuffle: toDur(shuffle),
		StageUnpack:  toDur(unpack),
		StageReduce:  toDur(reduce),
	}
}
