module codedterasort

go 1.24.0
