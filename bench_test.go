// Benchmarks that regenerate every table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Table/figure benchmarks report domain metrics via b.ReportMetric:
// simulated seconds for the EC2-scale tables (sim_total_s, speedup), real
// measured values for the protocol-level figures (load_gain, shuffle_s).
package codedterasort_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"codedterasort/internal/cluster"
	"codedterasort/internal/codec"
	codedpkg "codedterasort/internal/coded"
	"codedterasort/internal/combin"
	"codedterasort/internal/kv"
	"codedterasort/internal/model"
	"codedterasort/internal/parallel"
	"codedterasort/internal/partition"
	"codedterasort/internal/placement"
	"codedterasort/internal/simnet"
	"codedterasort/internal/stats"
	"codedterasort/internal/terasort"
	"codedterasort/internal/transport"
	"codedterasort/internal/transport/memnet"
)

// --- Tables I-III: 12 GB at 100 Mbps on the virtual-time simulator ---

// simTable simulates one paper row at full scale and reports its total.
func simTable(b *testing.B, k, r int, coded bool) {
	b.Helper()
	cm := simnet.Default()
	var total, baseTotal float64
	for i := 0; i < b.N; i++ {
		bd, _, err := simnet.Simulate(simnet.Workload{
			Rows: simnet.Rows12GB, K: k, R: r, Coded: coded,
		}, cm)
		if err != nil {
			b.Fatal(err)
		}
		total = bd.Total().Seconds()
		if coded {
			base, _, err := simnet.Simulate(simnet.Workload{Rows: simnet.Rows12GB, K: k}, cm)
			if err != nil {
				b.Fatal(err)
			}
			baseTotal = base.Total().Seconds()
		}
	}
	b.ReportMetric(total, "sim_total_s")
	if coded {
		b.ReportMetric(baseTotal/total, "speedup")
	}
}

func BenchmarkTable1TeraSortK16(b *testing.B) { simTable(b, 16, 1, false) }
func BenchmarkTable2CodedK16R3(b *testing.B)  { simTable(b, 16, 3, true) }
func BenchmarkTable2CodedK16R5(b *testing.B)  { simTable(b, 16, 5, true) }
func BenchmarkTable3TeraSortK20(b *testing.B) { simTable(b, 20, 1, false) }
func BenchmarkTable3CodedK20R3(b *testing.B)  { simTable(b, 20, 3, true) }
func BenchmarkTable3CodedK20R5(b *testing.B)  { simTable(b, 20, 5, true) }

// --- Fig 1: the K=3, N=6, Q=3 Coded MapReduce example, run live ---

func BenchmarkFig1CMRExample(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		tera, err := cluster.RunLocal(cluster.Spec{
			Algorithm: cluster.AlgTeraSort, K: 3, Rows: 6000, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		codedJob, err := cluster.RunLocal(cluster.Spec{
			Algorithm: cluster.AlgCoded, K: 3, R: 2, Rows: 6000, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(tera.ShuffleLoadBytes) / float64(codedJob.ShuffleLoadBytes)
	}
	// The example's 12 -> 3 load reduction is 4x at K=3, r=2.
	b.ReportMetric(gain, "load_gain")
}

// --- Fig 2: the computation/communication tradeoff curve ---

func BenchmarkFig2LoadCurve(b *testing.B) {
	var pts []model.LoadPoint
	for i := 0; i < b.N; i++ {
		pts = model.LoadCurve(10)
	}
	b.ReportMetric(pts[1].Uncoded/pts[1].Coded, "gain_at_r2")
	b.ReportMetric(pts[4].Uncoded/pts[4].Coded, "gain_at_r5")
}

// --- Fig 3: the TeraSort pipeline (K=4 walkthrough scale) ---

func BenchmarkFig3TeraSortPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := cluster.RunLocal(cluster.Spec{
			Algorithm: cluster.AlgTeraSort, K: 4, Rows: 8000, Seed: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 4: structured redundant file placement ---

func BenchmarkFig4RedundantPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := placement.Redundant(16, 5, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 5: the Map stage with relevant-IV filtering ---

func BenchmarkFig5MapStage(b *testing.B) {
	plan, err := placement.Redundant(6, 3, 60000)
	if err != nil {
		b.Fatal(err)
	}
	part := partition.NewUniform(6)
	b.SetBytes(plan.StoredRows(0) * kv.RecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := kv.NewGenerator(5, kv.DistUniform)
		_ = codedpkg.MapFiles(plan, part, gen, 0)
	}
}

// --- Fig 6/7: encoding and decoding within one multicast group ---

func fig67Setup(b *testing.B) ([]codec.IVMap, combin.Set) {
	b.Helper()
	plan, err := placement.Redundant(5, 2, 50000)
	if err != nil {
		b.Fatal(err)
	}
	part := partition.NewUniform(5)
	stores := make([]codec.IVMap, 5)
	for rank := 0; rank < 5; rank++ {
		stores[rank] = codedpkg.MapFiles(plan, part, kv.NewGenerator(6, kv.DistUniform), rank)
	}
	return stores, combin.NewSet(0, 1, 2)
}

func BenchmarkFig6Encoding(b *testing.B) {
	stores, m := fig67Setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.EncodePacket(stores[0], m, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Decoding(b *testing.B) {
	stores, m := fig67Setup(b)
	pkt, err := codec.EncodePacket(stores[0], m, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.DecodePacket(stores[1], m, 1, 0, pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// Chunked Algorithm 1/2 on the multicore runtime: every chunk of a coded
// packet encodes (and decodes) independently, so the per-chunk
// EncodePacketChunk/DecodePacketChunk calls fan out over P goroutines —
// the coded engine's code-path hot loop at P=1 vs P=NumCPU.
func BenchmarkChunkCodecParallel(b *testing.B) {
	stores, m := fig67Setup(b)
	const chunkRows = 256
	count := codec.PacketChunkCount(stores[0], m, 0, chunkRows)
	pkts := make([][]byte, count)
	for c := 0; c < count; c++ {
		pkt, err := codec.EncodePacketChunk(stores[0], m, 0, chunkRows, c)
		if err != nil {
			b.Fatal(err)
		}
		pkts[c] = pkt
	}
	for _, procs := range []int{1, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("encode/p=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := parallel.Do(procs, count, func(c int) error {
					pkt, err := codec.EncodePacketChunk(stores[0], m, 0, chunkRows, c)
					codec.Recycle(pkt)
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("decode/p=%d", procs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := parallel.Do(procs, count, func(c int) error {
					_, err := codec.DecodePacketChunk(stores[1], m, 1, 0, chunkRows, c, pkts[c])
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig 8: the coordinator/worker architecture over real TCP ---

func BenchmarkFig8CoordinatorWorkerTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		coord, err := cluster.NewCoordinator("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		spec := cluster.Spec{Algorithm: cluster.AlgCoded, K: 3, R: 2, Rows: 3000, Seed: 4}
		var wg sync.WaitGroup
		for w := 0; w < spec.K; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := cluster.RunWorker(coord.Addr(), cluster.WorkerOptions{}); err != nil {
					b.Error(err)
				}
			}()
		}
		if _, err := coord.RunJob(spec); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
		coord.Close()
	}
}

// --- Fig 9: serial unicast vs serial multicast shuffle schedules ---

// fig9Run measures the shuffle stage under light traffic shaping so the
// schedule, not the in-memory copy, dominates.
func fig9Run(b *testing.B, alg cluster.Algorithm, r int, tree bool) float64 {
	b.Helper()
	job, err := cluster.RunLocal(cluster.Spec{
		Algorithm: alg, K: 6, R: r, Rows: 30000, Seed: 9,
		RateMbps: 2000, TreeMulticast: tree,
	})
	if err != nil {
		b.Fatal(err)
	}
	return job.Times[stats.StageShuffle].Seconds()
}

func BenchmarkFig9aSerialUnicastShuffle(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s = fig9Run(b, cluster.AlgTeraSort, 0, false)
	}
	b.ReportMetric(s, "shuffle_s")
}

func BenchmarkFig9bSerialMulticastShuffle(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s = fig9Run(b, cluster.AlgCoded, 3, false)
	}
	b.ReportMetric(s, "shuffle_s")
}

// --- Ablations -----------------------------------------------------------

// Multicast strategy: the paper's serial per-receiver broadcast vs the
// binomial tree MPI_Bcast uses (Section V-C discusses the tree's log(r)
// cost; the tree shortens wall-clock shuffle at equal load).
func BenchmarkAblationMulticastSequential(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s = fig9Run(b, cluster.AlgCoded, 3, false)
	}
	b.ReportMetric(s, "shuffle_s")
}

func BenchmarkAblationMulticastTree(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s = fig9Run(b, cluster.AlgCoded, 3, true)
	}
	b.ReportMetric(s, "shuffle_s")
}

// Redundancy sweep at K=6 (the "impact of r" trend of Section V-C): load
// falls as ~1/r while CodeGen group count rises as C(K, r+1).
func BenchmarkAblationRSweep(b *testing.B) {
	for _, r := range []int{1, 2, 3, 4, 5} {
		r := r
		b.Run(benchName("r", r), func(b *testing.B) {
			var loadMB float64
			for i := 0; i < b.N; i++ {
				job, err := cluster.RunLocal(cluster.Spec{
					Algorithm: cluster.AlgCoded, K: 6, R: r, Rows: 12000, Seed: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				loadMB = float64(job.ShuffleLoadBytes) / 1e6
			}
			b.ReportMetric(loadMB, "load_MB")
			b.ReportMetric(float64(combin.Binomial(6, r+1)), "groups")
		})
	}
}

// Worker-count sweep at r=3 (the "impact of K" trend): simulated 12 GB
// speedup shrinks as K grows.
func BenchmarkAblationKSweep(b *testing.B) {
	cm := simnet.Default()
	for _, k := range []int{8, 12, 16, 20, 24} {
		k := k
		b.Run(benchName("k", k), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				base, _, err := simnet.Simulate(simnet.Workload{Rows: simnet.Rows12GB, K: k}, cm)
				if err != nil {
					b.Fatal(err)
				}
				codedB, _, err := simnet.Simulate(simnet.Workload{
					Rows: simnet.Rows12GB, K: k, R: 3, Coded: true,
				}, cm)
				if err != nil {
					b.Fatal(err)
				}
				speedup = base.Total().Seconds() / codedB.Total().Seconds()
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// End-to-end live engines at matched scale: the full wall-clock pipelines
// without traffic shaping (compute-bound comparison).
func BenchmarkLiveTeraSortK8(b *testing.B) {
	benchLive(b, cluster.Spec{Algorithm: cluster.AlgTeraSort, K: 8, Rows: 40000, Seed: 1})
}

func BenchmarkLiveCodedK8R3(b *testing.B) {
	benchLive(b, cluster.Spec{Algorithm: cluster.AlgCoded, K: 8, R: 3, Rows: 40000, Seed: 1})
}

func benchLive(b *testing.B, spec cluster.Spec) {
	b.Helper()
	b.SetBytes(spec.Rows * kv.RecordSize)
	for i := 0; i < b.N; i++ {
		if _, err := cluster.RunLocal(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// Raw stage-driver benchmark over memnet without the cluster harness.
func BenchmarkRawTeraSortDriver(b *testing.B) {
	cfg := terasort.Config{K: 4, Rows: 20000, Seed: 1}
	b.SetBytes(cfg.Rows * kv.RecordSize)
	for i := 0; i < b.N; i++ {
		mesh := memnet.NewMesh(cfg.K)
		var wg sync.WaitGroup
		for r := 0; r < cfg.K; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				ep := transport.WithCollectives(mesh.Endpoint(rank), transport.BcastSequential)
				if _, err := terasort.Run(ep, cfg, nil); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
		mesh.Close()
	}
}

func benchName(prefix string, v int) string {
	return fmt.Sprintf("%s=%d", prefix, v)
}

// Parallel vs serial schedule (the paper's "Asynchronous Execution"
// future direction): same load, overlapping egress links.
func BenchmarkAblationSerialSchedule(b *testing.B) {
	benchSchedule(b, false)
}

func BenchmarkAblationParallelSchedule(b *testing.B) {
	benchSchedule(b, true)
}

func benchSchedule(b *testing.B, parallel bool) {
	b.Helper()
	var s float64
	for i := 0; i < b.N; i++ {
		job, err := cluster.RunLocal(cluster.Spec{
			Algorithm: cluster.AlgTeraSort, K: 4, Rows: 20000, Seed: 3,
			RateMbps: 2000, ParallelShuffle: parallel,
		})
		if err != nil {
			b.Fatal(err)
		}
		s = job.Times[stats.StageShuffle].Seconds()
	}
	b.ReportMetric(s, "shuffle_s")
}

// Straggler sensitivity of the serial schedule (coded-computing context
// the paper cites).
func BenchmarkAblationStraggler(b *testing.B) {
	for _, factor := range []float64{1, 2, 4} {
		factor := factor
		b.Run(fmt.Sprintf("slow=%.0fx", factor), func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				job, err := cluster.RunLocal(cluster.Spec{
					Algorithm: cluster.AlgTeraSort, K: 4, Rows: 20000, Seed: 3,
					RateMbps: 2000, StragglerFactor: factor,
				})
				if err != nil {
					b.Fatal(err)
				}
				s = job.Times[stats.StageShuffle].Seconds()
			}
			b.ReportMetric(s, "shuffle_s")
		})
	}
}

// Streaming pipelined shuffle (the paper's Section VII "Asynchronous
// Execution" direction): the same netem-shaped job with the monolithic
// stage-by-stage schedule vs the chunked pipeline that overlaps
// Pack/Encode, the wire, and Unpack/Decode. total_s is end-to-end
// wall time; shuffle_s is the (overlapped) shuffle stage.
func benchPipelined(b *testing.B, spec cluster.Spec) {
	b.Helper()
	var total, shuffle float64
	for i := 0; i < b.N; i++ {
		job, err := cluster.RunLocal(spec)
		if err != nil {
			b.Fatal(err)
		}
		total = job.Total()
		shuffle = job.Times[stats.StageShuffle].Seconds()
	}
	b.ReportMetric(total, "total_s")
	b.ReportMetric(shuffle, "shuffle_s")
}

func pipelineSpec(alg cluster.Algorithm, r, chunkRows int, parallel bool) cluster.Spec {
	return cluster.Spec{
		Algorithm: alg, K: 4, R: r, Rows: 200000, Seed: 11,
		RateMbps: 1000, ParallelShuffle: parallel,
		ChunkRows: chunkRows, Window: 8,
	}
}

// The schedule progression per engine: the paper's serial one-sender
// schedule, the asynchronous all-senders schedule, and the full streaming
// pipeline (asynchronous + chunked, stages overlapped). Chunk sizes give
// each stream ~5-8 chunks of pipeline depth: TeraSort streams are
// Rows/K^2 rows, coded streams are segments of one file's IVs (r x C(K,r)/K
// times smaller), so the tuned sizes differ.
func BenchmarkPipelineTeraSortSerial(b *testing.B) {
	benchPipelined(b, pipelineSpec(cluster.AlgTeraSort, 0, 0, false))
}

func BenchmarkPipelineTeraSortParallel(b *testing.B) {
	benchPipelined(b, pipelineSpec(cluster.AlgTeraSort, 0, 0, true))
}

func BenchmarkPipelineTeraSortChunked(b *testing.B) {
	benchPipelined(b, pipelineSpec(cluster.AlgTeraSort, 0, 2000, true))
}

func BenchmarkPipelineCodedSerial(b *testing.B) {
	benchPipelined(b, pipelineSpec(cluster.AlgCoded, 2, 0, false))
}

func BenchmarkPipelineCodedParallel(b *testing.B) {
	benchPipelined(b, pipelineSpec(cluster.AlgCoded, 2, 0, true))
}

func BenchmarkPipelineCodedChunked(b *testing.B) {
	benchPipelined(b, pipelineSpec(cluster.AlgCoded, 2, 800, true))
}

// Reduce-stage sort algorithm: stdlib comparison sort (the paper uses
// std::sort) vs LSD radix on the fixed-width TeraGen keys.
func BenchmarkAblationReduceComparisonSort(b *testing.B) {
	base := kv.NewGenerator(1, kv.DistUniform).Generate(0, 200000)
	b.SetBytes(int64(base.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := base.Clone()
		b.StartTimer()
		r.Sort()
	}
}

func BenchmarkAblationReduceRadixSort(b *testing.B) {
	base := kv.NewGenerator(1, kv.DistUniform).Generate(0, 200000)
	b.SetBytes(int64(base.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := base.Clone()
		b.StartTimer()
		r.SortRadix()
	}
}

// Coded Grep (the paper's "Beyond Sorting" direction): shuffle load of
// filtered records, coded vs uncoded.
func BenchmarkBeyondSortingCodedGrep(b *testing.B) {
	// The first 8 value bytes hold the row id; filler text starts after.
	match := func(rec []byte) bool { return rec[kv.KeySize+8] == 'Q' }
	var gain float64
	for i := 0; i < b.N; i++ {
		mesh := memnet.NewMesh(4)
		var wg sync.WaitGroup
		loads := make([]int64, 2)
		for mode := 0; mode < 2; mode++ {
			coded := mode == 1
			var total int64
			var mu sync.Mutex
			for rank := 0; rank < 4; rank++ {
				wg.Add(1)
				go func(rank int, coded bool) {
					defer wg.Done()
					ep := transport.WithCollectives(mesh.Endpoint(rank), transport.BcastSequential)
					if coded {
						res, err := codedpkg.Run(ep, codedpkg.Config{K: 4, R: 2, Rows: 20000, Seed: 5, Filter: match}, nil)
						if err != nil {
							b.Error(err)
							return
						}
						mu.Lock()
						total += res.MulticastBytes
						mu.Unlock()
					} else {
						res, err := terasort.Run(ep, terasort.Config{K: 4, Rows: 20000, Seed: 5, Filter: match}, nil)
						if err != nil {
							b.Error(err)
							return
						}
						mu.Lock()
						total += res.ShuffleBytes
						mu.Unlock()
					}
				}(rank, coded)
			}
			wg.Wait()
			loads[mode] = total
		}
		mesh.Close()
		gain = float64(loads[0]) / float64(loads[1])
	}
	b.ReportMetric(gain, "load_gain")
}
