// Command ec2_tables regenerates the paper's full evaluation (Tables I, II, III:
// 12 GB sorted by K=16 and K=20 EC2 workers at 100 Mbps) on the
// virtual-time simulator and prints simulated-vs-published values for
// every cell, ending with the aggregate fit quality.
//
//	go run ./examples/ec2_tables
package main

import (
	"fmt"
	"log"
	"math"

	"codedterasort/internal/simnet"
	"codedterasort/internal/stats"
)

func main() {
	cm := simnet.Default()
	for _, spec := range []simnet.TableSpec{
		simnet.Table1Spec(), simnet.Table2Spec(), simnet.Table3Spec(),
	} {
		rows, err := simnet.GenerateTable(spec, cm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(stats.RenderTable(spec.Title+" (simulated)", rows))
		fmt.Println()
	}

	cells, err := simnet.Compare(cm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Per-cell comparison against the published tables:")
	fmt.Print(simnet.RenderComparison(cells))

	var sum, worst float64
	var worstCell simnet.CompareCell
	for _, c := range cells {
		e := math.Abs(c.Ratio() - 1)
		sum += e
		if e > worst {
			worst, worstCell = e, c
		}
	}
	fmt.Printf("\nMean cell error: %.1f%%; worst cell: %s %s (%.2fx)\n",
		100*sum/float64(len(cells)), worstCell.Row, worstCell.Stage, worstCell.Ratio())
	fmt.Println("The reproduction targets shape (who wins, by what factor, how stages")
	fmt.Println("scale with r and K), not exact EC2 wall-clock values.")
}
