// Command mapreduce tours the coded-MapReduce framework: it runs the four
// built-in kernels (word count, grep, inverted index, log aggregation)
// coded and uncoded on an in-process cluster, verifies the reduced outputs
// are byte-identical, and then defines a custom kernel inline — a
// vocabulary histogram — to show that a new computation is just a Mapper
// and a Reducer; the coded shuffle, streaming, spilling and recovery come
// from the framework.
//
//	go run ./examples/mapreduce
package main

import (
	"bytes"
	"fmt"
	"log"
	"strconv"

	"codedterasort/internal/kv"
	"codedterasort/internal/mapreduce"
)

const (
	k    = 6
	r    = 3
	rows = 100_000
	seed = 42
)

// runBoth executes the kernel uncoded and coded, checks byte-identity of
// the reduced outputs, and returns (reduced rows, uncoded load, coded load).
func runBoth(kern mapreduce.Kernel) (int64, int64, int64) {
	plain, err := mapreduce.RunLocal(kern.Job(k, 1, rows, seed), mapreduce.LocalOptions{})
	if err != nil {
		log.Fatalf("%s uncoded: %v", kern.Name, err)
	}
	coded, err := mapreduce.RunLocal(kern.Job(k, r, rows, seed), mapreduce.LocalOptions{})
	if err != nil {
		log.Fatalf("%s coded: %v", kern.Name, err)
	}
	for rank := 0; rank < k; rank++ {
		if !bytes.Equal(plain.Output(rank).Bytes(), coded.Output(rank).Bytes()) {
			log.Fatalf("%s: rank %d outputs differ between engines", kern.Name, rank)
		}
	}
	return coded.Rows, plain.ShuffleLoadBytes, coded.ShuffleLoadBytes
}

func main() {
	fmt.Printf("Coded MapReduce: %d records on %d workers, r=%d\n\n", rows, k, r)
	fmt.Printf("%-14s %12s %14s %12s %6s\n", "kernel", "reduced rows", "uncoded KB", "coded KB", "gain")
	for _, kern := range mapreduce.Kernels() {
		out, plainLoad, codedLoad := runBoth(kern)
		fmt.Printf("%-14s %12d %14.1f %12.1f %5.2fx\n",
			kern.Name, out, float64(plainLoad)/1e3, float64(codedLoad)/1e3,
			float64(plainLoad)/float64(codedLoad))
	}

	// A custom kernel is just a Mapper and a Reducer: count the distinct
	// documents each word length appears in. Everything else — placement,
	// coding, shuffle, sorting, grouping — is the framework's.
	custom := mapreduce.Kernel{
		Name: "wordlen",
		Doc:  "histogram vocabulary word lengths over the text corpus",
		Mapper: mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) {
			for _, w := range bytes.Fields(mapreduce.TrimPad(rec[kv.KeySize:])) {
				emit(strconv.AppendInt([]byte("len"), int64(len(w)), 10), []byte{1})
			}
		}),
		Reducer: mapreduce.ReducerFunc(func(key []byte, values [][]byte, emit mapreduce.Emit) {
			emit(key, strconv.AppendInt(nil, int64(len(values)), 10))
		}),
		Input: mapreduce.TextInput,
	}
	out, plainLoad, codedLoad := runBoth(custom)
	fmt.Printf("%-14s %12d %14.1f %12.1f %5.2fx   (defined in this file)\n",
		custom.Name, out, float64(plainLoad)/1e3, float64(codedLoad)/1e3,
		float64(plainLoad)/float64(codedLoad))

	fmt.Println("\nEvery kernel's coded and uncoded reduced outputs are byte-identical;")
	fmt.Println("the coded shuffle moved each at a fraction of the uncoded load.")
}
