// Command quickstart sorts one million 100-byte records on an in-process
// cluster of 8 workers with both algorithms — conventional TeraSort and
// CodedTeraSort with redundancy r=3 — verifies both outputs, and compares
// their stage breakdowns and communication loads.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"codedterasort/internal/cluster"
	"codedterasort/internal/stats"
)

func main() {
	const (
		k    = 8
		r    = 3
		rows = 1_000_000 // 100 MB
		seed = 2017
	)
	fmt.Printf("Sorting %d records (%.0f MB) on %d in-process workers\n\n", rows, float64(rows)*100/1e6, k)

	tera, err := cluster.RunLocal(cluster.Spec{
		Algorithm: cluster.AlgTeraSort, K: k, Rows: rows, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TeraSort        done: validated=%v\n", tera.Validated)

	coded, err := cluster.RunLocal(cluster.Spec{
		Algorithm: cluster.AlgCoded, K: k, R: r, Rows: rows, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CodedTeraSort   done: validated=%v\n\n", coded.Validated)

	fmt.Print(stats.RenderTable("Stage breakdown (wall clock, unshaped network)", []stats.Row{
		{Label: "TeraSort", Times: tera.Times},
		{Label: fmt.Sprintf("CodedTeraSort r=%d", r), Times: coded.Times,
			Speedup: tera.Times.Total().Seconds() / coded.Times.Total().Seconds()},
	}))
	fmt.Println()

	gain := float64(tera.ShuffleLoadBytes) / float64(coded.ShuffleLoadBytes)
	fmt.Printf("Communication load (shuffle payload, multicast counted once):\n")
	fmt.Printf("  TeraSort:      %8.2f MB\n", float64(tera.ShuffleLoadBytes)/1e6)
	fmt.Printf("  CodedTeraSort: %8.2f MB  -> %.2fx less data shuffled\n",
		float64(coded.ShuffleLoadBytes)/1e6, gain)
	fmt.Printf("\nOn a bandwidth-constrained network (the paper's 100 Mbps EC2 setting)\n")
	fmt.Printf("that %.1fx load reduction converts into the paper's 1.97x-3.39x\n", gain)
	fmt.Printf("end-to-end speedup; see examples/ratelimited and cmd/tables.\n")
}
