// Command skewed shows why the paper's uniform key-domain partitioner
// needs help on realistic inputs, and what the sampling round buys: it
// sorts a Zipf(1.1)-keyed input on 8 in-process workers under both
// partitioning policies and prints each reducer's share of the output,
// then sweeps the whole skewed-workload family.
//
//	go run ./examples/skewed
//
// The same comparison from the CLI:
//
//	go run ./cmd/terasort -k 8 -rows 200000 -dist zipf -partition sample
package main

import (
	"fmt"
	"log"

	"codedterasort/internal/cluster"
	"codedterasort/internal/kv"
	"codedterasort/internal/partition"
)

func main() {
	const (
		k    = 8
		rows = 1 << 16
		seed = 42
	)

	fmt.Printf("Sorting %d Zipf(1.1)-keyed rows on %d workers.\n\n", rows, k)
	policies := []string{"uniform", "sample"}
	jobs := make(map[string]*cluster.JobReport, len(policies))
	for _, pol := range policies {
		job, err := cluster.RunLocal(cluster.Spec{
			Algorithm:    cluster.AlgTeraSort,
			K:            k,
			Rows:         rows,
			Seed:         seed,
			DistName:     "zipf",
			Partitioning: pol,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !job.Validated {
			log.Fatalf("%s run failed validation", pol)
		}
		jobs[pol] = job
	}

	fmt.Printf("%-8s %16s %16s\n", "reducer", "uniform rows", "sampled rows")
	for rank := 0; rank < k; rank++ {
		fmt.Printf("%-8d %16d %16d\n", rank,
			jobs["uniform"].Workers[rank].OutputRows,
			jobs["sample"].Workers[rank].OutputRows)
	}
	for _, pol := range policies {
		counts := make([]int, k)
		for i, w := range jobs[pol].Workers {
			counts[i] = int(w.OutputRows)
		}
		fmt.Printf("\n%-8s max/mean imbalance %.2fx", pol, partition.Imbalance(counts))
	}
	fmt.Printf("\nsampling round payload: %d bytes\n\n", jobs["sample"].SampleRoundBytes)

	fmt.Println("The full skewed-workload family, same comparison:")
	fmt.Printf("%-12s %16s %16s\n", "dist", "uniform", "sampled")
	for _, dist := range kv.SkewedDistributions {
		imb := make(map[string]float64, len(policies))
		for _, pol := range policies {
			job, err := cluster.RunLocal(cluster.Spec{
				Algorithm: cluster.AlgTeraSort, K: k, Rows: rows / 4, Seed: seed,
				DistName: dist.String(), Partitioning: pol,
			})
			if err != nil {
				log.Fatal(err)
			}
			counts := make([]int, k)
			for i, w := range job.Workers {
				counts[i] = int(w.OutputRows)
			}
			imb[pol] = partition.Imbalance(counts)
		}
		fmt.Printf("%-12s %15.2fx %15.2fx\n", dist, imb["uniform"], imb["sample"])
	}
}
