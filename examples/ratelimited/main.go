// Command ratelimited reproduces the paper's experimental condition at laptop
// scale: every worker's egress is traffic-shaped (the role `tc` plays on
// the paper's EC2 instances, Section V-B), which makes the shuffle
// bandwidth-bound — and then CodedTeraSort beats TeraSort in real wall
// -clock time, not just in bytes.
//
//	go run ./examples/ratelimited
//	go run ./examples/ratelimited -rate 200 -k 6 -r 3 -rows 120000
package main

import (
	"flag"
	"fmt"
	"log"

	"codedterasort/internal/cluster"
	"codedterasort/internal/stats"
)

func main() {
	k := flag.Int("k", 6, "workers")
	r := flag.Int("r", 3, "redundancy")
	rows := flag.Int64("rows", 240_000, "records (100 bytes each)")
	rate := flag.Float64("rate", 200, "per-node egress cap in Mbps")
	flag.Parse()

	fmt.Printf("Sorting %.0f MB on %d workers, every egress capped at %.0f Mbps\n\n",
		float64(*rows)*100/1e6, *k, *rate)

	tera, err := cluster.RunLocal(cluster.Spec{
		Algorithm: cluster.AlgTeraSort, K: *k, Rows: *rows, Seed: 7, RateMbps: *rate,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Serial per-receiver multicast (the paper's Fig 9b schedule): the
	// root transmits the packet once per receiver, so wire relief is only
	// (K-1)/K vs (1-r/K), not the full r.
	codedSeq, err := cluster.RunLocal(cluster.Spec{
		Algorithm: cluster.AlgCoded, K: *k, R: *r, Rows: *rows, Seed: 7, RateMbps: *rate,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Binomial-tree multicast (what MPI_Bcast does): relays forward on
	// their own links, so each multicast costs ~log2(r+1) serialized
	// transmissions — the log(r) behaviour the paper cites in Section V-C.
	codedTree, err := cluster.RunLocal(cluster.Spec{
		Algorithm: cluster.AlgCoded, K: *k, R: *r, Rows: *rows, Seed: 7, RateMbps: *rate,
		TreeMulticast: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(stats.RenderTable("Wall-clock stage breakdown under traffic shaping", []stats.Row{
		{Label: "TeraSort", Times: tera.Times},
		{Label: fmt.Sprintf("Coded r=%d serial mcast", *r), Times: codedSeq.Times,
			Speedup: tera.Times.Total().Seconds() / codedSeq.Times.Total().Seconds()},
		{Label: fmt.Sprintf("Coded r=%d tree mcast", *r), Times: codedTree.Times,
			Speedup: tera.Times.Total().Seconds() / codedTree.Times.Total().Seconds()},
	}))
	fmt.Println()
	fmt.Printf("Shuffle wall time:  TeraSort %.2fs, serial-mcast %.2fs, tree-mcast %.2fs\n",
		tera.Times[stats.StageShuffle].Seconds(),
		codedSeq.Times[stats.StageShuffle].Seconds(),
		codedTree.Times[stats.StageShuffle].Seconds())
	fmt.Printf("Shuffle payload:    TeraSort %.2f MB vs Coded %.2f MB (%.2fx less)\n",
		float64(tera.ShuffleLoadBytes)/1e6, float64(codedSeq.ShuffleLoadBytes)/1e6,
		float64(tera.ShuffleLoadBytes)/float64(codedSeq.ShuffleLoadBytes))
	fmt.Printf("All outputs validated: %v, %v, %v\n", tera.Validated, codedSeq.Validated, codedTree.Validated)
}
