// Command distributed runs the paper's Fig 8 deployment end to end in one command:
// a coordinator and K worker processes-worth of protocol over real TCP
// sockets on loopback. Each worker registers, receives its rank and the
// job spec, joins the worker mesh, sorts, and reports; the coordinator
// validates the combined output checksums and prints the stage table.
//
//	go run ./examples/distributed
//	go run ./examples/distributed -alg terasort -k 6 -rows 300000
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"codedterasort/internal/cluster"
	"codedterasort/internal/stats"
)

func main() {
	alg := flag.String("alg", "codedterasort", "terasort or codedterasort")
	k := flag.Int("k", 4, "workers")
	r := flag.Int("r", 2, "redundancy (codedterasort)")
	rows := flag.Int64("rows", 200_000, "records")
	flag.Parse()

	spec := cluster.Spec{
		Algorithm: cluster.Algorithm(*alg), K: *k, R: *r, Rows: *rows, Seed: 2017,
	}
	if spec.Algorithm == cluster.AlgTeraSort {
		spec.R = 0
	}

	coord, err := cluster.NewCoordinator("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	fmt.Printf("coordinator listening on %s; launching %d workers\n", coord.Addr(), *k)

	var wg sync.WaitGroup
	for i := 0; i < *k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := cluster.RunWorker(coord.Addr(), cluster.WorkerOptions{}); err != nil {
				log.Fatalf("worker %d: %v", i, err)
			}
		}(i)
	}
	job, err := coord.RunJob(spec)
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("\njob validated=%v; %.1f MB sorted; shuffle load %.2f MB; wire traffic %.2f MB\n\n",
		job.Validated, float64(*rows)*100/1e6,
		float64(job.ShuffleLoadBytes)/1e6, float64(job.WireBytes)/1e6)
	fmt.Print(stats.RenderTable("Cluster stage breakdown (max over workers)",
		[]stats.Row{{Label: string(spec.Algorithm), Times: job.Times}}))
	fmt.Println("\nPer-worker reports:")
	for _, w := range job.Workers {
		fmt.Printf("  rank %d: %8d records reduced, %6.2f MB payload sent, total %.2fs\n",
			w.Rank, w.OutputRows, float64(w.SentPayloadBytes)/1e6, w.Times.Total().Seconds())
	}
}
