// Command multitenant demonstrates the serving layer end to end in one
// process: it starts the sortd service (internal/service) on a loopback
// listener, defines two tenants with different priorities and rate
// limits, submits a burst of coded and uncoded jobs through the HTTP
// client, waits for them all, and prints each job's outcome plus the
// per-tenant lines from /metrics — the same daemon cmd/sortd runs, minus
// the process boundary.
//
//	go run ./examples/multitenant
//	go run ./examples/multitenant -jobs 8 -rows 50000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"codedterasort/internal/cluster"
	"codedterasort/internal/service"
	"codedterasort/internal/service/tenant"
)

func main() {
	jobs := flag.Int("jobs", 6, "jobs to submit (alternating tenants and engines)")
	rows := flag.Int64("rows", 30_000, "records per job (100 bytes each)")
	flag.Parse()

	// Two tenants: acme pays for priority, guest is rate-limited to a
	// 2-job burst refilled at one job per 10 seconds.
	reg := tenant.NewRegistry(tenant.Limits{})
	must(reg.Define("acme", tenant.Limits{Priority: 10}))
	must(reg.Define("guest", tenant.Limits{Priority: 1, RatePerSec: 0.1, Burst: 2}))

	srv := service.New(service.Config{PoolSlots: 6, Tenants: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("sortd serving on %s\n\n", addr)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := service.NewClient(addr)
	must(c.WaitHealthy(ctx))

	var ids []string
	for i := 0; i < *jobs; i++ {
		tn := "acme"
		if i%2 == 1 {
			tn = "guest"
		}
		spec := cluster.Spec{Algorithm: cluster.AlgTeraSort, K: 3, Rows: *rows, Seed: uint64(i + 1)}
		if i%3 == 0 {
			spec = cluster.Spec{Algorithm: cluster.AlgCoded, K: 3, R: 2, Rows: *rows, Seed: uint64(i + 1)}
		}
		st, err := c.Submit(ctx, service.SubmitRequest{Tenant: tn, Spec: spec})
		if err != nil {
			// The guest tenant's token bucket makes this expected past its
			// burst: admission control working, not a failure.
			fmt.Printf("%-8s %-14s rejected: %v\n", tn, spec.Algorithm, err)
			continue
		}
		fmt.Printf("%-8s %-14s accepted as %s\n", tn, spec.Algorithm, st.ID)
		ids = append(ids, st.ID)
	}

	fmt.Println()
	for _, id := range ids {
		st, err := c.WaitJob(ctx, id)
		must(err)
		fmt.Printf("%s  %-8s %-14s %-5s validated=%-5v rows=%-7d shuffle=%d B\n",
			st.ID, st.Tenant, st.Spec.Algorithm, st.State, st.Validated,
			st.OutputRows, st.ShuffleLoadBytes)
	}

	fmt.Println("\nper-tenant /metrics:")
	m, err := c.Metrics(ctx)
	must(err)
	for _, line := range strings.Split(m, "\n") {
		if strings.HasPrefix(line, "sortd_tenant_jobs_") && !strings.Contains(line, " 0") {
			fmt.Println("  " + line)
		}
	}

	must(c.Drain(ctx))
	<-srv.Drained()
	hs.Shutdown(ctx)
	fmt.Println("\ndrained cleanly")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
