// Command coded_grep demonstrates the paper's "Beyond Sorting Algorithms" future
// direction (Section VI): the same structured redundancy and coded
// multicast shuffling applied to Grep, another application the paper names
// as shuffle-limited. The grep kernel of the MapReduce framework scans
// each worker's files for records whose value contains a pattern; only the
// (coded) matches are shuffled, and reducers output the sorted matches of
// their key range.
//
//	go run ./examples/coded_grep
package main

import (
	"bytes"
	"fmt"
	"log"

	"codedterasort/internal/kv"
	"codedterasort/internal/mapreduce"
)

func main() {
	const (
		k    = 6
		r    = 3
		rows = 300_000
		seed = 21
	)
	pattern := "QQ" // ~0.13% of uniform 26-letter filler values
	kern := mapreduce.Grep(pattern)

	fmt.Printf("Coded Grep: pattern %q over %d records on %d workers (r=%d)\n\n",
		pattern, rows, k, r)

	// One kernel, both engines: the replication factor alone decides
	// whether the job compiles onto the uncoded or the coded graph. The
	// supervised runner owns the workers and their errors — no goroutine
	// plumbing in the application.
	run := func(rr int) (int, int64) {
		rep, err := mapreduce.RunLocal(kern.Job(k, rr, rows, seed), mapreduce.LocalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		return int(rep.Rows), rep.ShuffleLoadBytes
	}
	plainMatches, plainLoad := run(1)
	codedMatches, codedLoad := run(r)

	// Reference scan.
	data := kv.NewGenerator(seed, kv.DistUniform).Generate(0, rows)
	want := 0
	for i := 0; i < data.Len(); i++ {
		if bytes.Contains(data.Record(i)[kv.KeySize:], []byte(pattern)) {
			want++
		}
	}
	fmt.Printf("sequential scan:   %6d matches\n", want)
	fmt.Printf("uncoded grep:      %6d matches, %8.1f KB shuffled\n", plainMatches, float64(plainLoad)/1e3)
	fmt.Printf("coded grep (r=%d):  %6d matches, %8.1f KB shuffled (%.2fx less)\n",
		r, codedMatches, float64(codedLoad)/1e3, float64(plainLoad)/float64(codedLoad))
	if plainMatches != want || codedMatches != want {
		log.Fatalf("match counts disagree: scan %d, uncoded %d, coded %d", want, plainMatches, codedMatches)
	}
	fmt.Println("\nAll three agree; the coded shuffle moved the matches with the same")
	fmt.Println("multicast coding the sorter uses, at ~1/r of the uncoded load.")
}
