// Command coded_grep demonstrates the paper's "Beyond Sorting Algorithms" future
// direction (Section VI): the same structured redundancy and coded
// multicast shuffling applied to Grep, another application the paper names
// as shuffle-limited. Each worker scans its files for records whose value
// contains a pattern, and only the (coded) matches are shuffled; reducers
// output the sorted matches of their key range.
//
//	go run ./examples/coded_grep
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"codedterasort/internal/coded"
	"codedterasort/internal/kv"
	"codedterasort/internal/terasort"
	"codedterasort/internal/transport"
	"codedterasort/internal/transport/memnet"
)

func main() {
	const (
		k    = 6
		r    = 3
		rows = 300_000
		seed = 21
	)
	pattern := []byte("QQ") // ~0.13% of uniform 26-letter filler values
	match := func(rec []byte) bool {
		return bytes.Contains(rec[kv.KeySize:], pattern)
	}

	fmt.Printf("Coded Grep: pattern %q over %d records on %d workers (r=%d)\n\n",
		pattern, rows, k, r)

	run := func(codedRun bool) (int, int64) {
		mesh := memnet.NewMesh(k)
		defer mesh.Close()
		var wg sync.WaitGroup
		matches := make([]int, k)
		var loadBytes int64
		var mu sync.Mutex
		for rank := 0; rank < k; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				ep := transport.WithCollectives(mesh.Endpoint(rank), transport.BcastSequential)
				if codedRun {
					res, err := coded.Run(ep, coded.Config{
						K: k, R: r, Rows: rows, Seed: seed, Filter: match,
					}, nil)
					if err != nil {
						log.Fatal(err)
					}
					mu.Lock()
					matches[rank] = res.Output.Len()
					loadBytes += res.MulticastBytes
					mu.Unlock()
				} else {
					res, err := terasort.Run(ep, terasort.Config{
						K: k, Rows: rows, Seed: seed, Filter: match,
					}, nil)
					if err != nil {
						log.Fatal(err)
					}
					mu.Lock()
					matches[rank] = res.Output.Len()
					loadBytes += res.ShuffleBytes
					mu.Unlock()
				}
			}(rank)
		}
		wg.Wait()
		total := 0
		for _, m := range matches {
			total += m
		}
		return total, loadBytes
	}

	plainMatches, plainLoad := run(false)
	codedMatches, codedLoad := run(true)

	// Reference scan.
	data := kv.NewGenerator(seed, kv.DistUniform).Generate(0, rows)
	want := 0
	for i := 0; i < data.Len(); i++ {
		if match(data.Record(i)) {
			want++
		}
	}
	fmt.Printf("sequential scan:   %6d matches\n", want)
	fmt.Printf("uncoded grep:      %6d matches, %8.1f KB shuffled\n", plainMatches, float64(plainLoad)/1e3)
	fmt.Printf("coded grep (r=%d):  %6d matches, %8.1f KB shuffled (%.2fx less)\n",
		r, codedMatches, float64(codedLoad)/1e3, float64(plainLoad)/float64(codedLoad))
	if plainMatches != want || codedMatches != want {
		log.Fatalf("match counts disagree: scan %d, uncoded %d, coded %d", want, plainMatches, codedMatches)
	}
	fmt.Println("\nAll three agree; the coded shuffle moved the matches with the same")
	fmt.Println("multicast coding the sorter uses, at ~1/r of the uncoded load.")
}
