// Command cmr_fig1 reproduces the worked example of the paper's Fig 1 and Section
// II: distributed computing of Q=3 functions from N=6 inputs on K=3 nodes.
//
//   - Uncoded, r=1 (Fig 1a): each node maps 2 files and needs 4 remote
//     intermediate values -> communication load 12.
//   - Uncoded, r=2: each file mapped twice; each node still needs 2 remote
//     values -> load 6.
//   - Coded, r=2 (Fig 1b): each node XORs two values and multicasts one
//     packet to both other nodes -> load 3, a 2x gain over uncoded r=2.
//
// The example first recomputes those counts from the closed-form model,
// then demonstrates them live: a real CodedTeraSort run with K=3, r=2
// multicasts exactly 3 coded packets.
//
//	go run ./examples/cmr_fig1
package main

import (
	"fmt"
	"log"

	"codedterasort/internal/cluster"
	"codedterasort/internal/model"
)

func main() {
	const (
		k = 3 // nodes
		q = 3 // output functions (one reduced per node)
		n = 6 // input files
	)
	fmt.Println("Fig 1 example: Q=3 functions, N=6 files, K=3 nodes")
	fmt.Println()

	// Normalized loads from the theory (Eq. 2), denormalized by Q*N = 18
	// intermediate values.
	qn := float64(q * n)
	uncoded1 := model.UncodedLoad(k, 1) * qn
	uncoded2 := model.UncodedLoad(k, 2) * qn
	coded2 := model.CodedLoad(k, 2) * qn
	fmt.Printf("  uncoded r=1 (Fig 1a): %2.0f intermediate values shuffled\n", uncoded1)
	fmt.Printf("  uncoded r=2:          %2.0f intermediate values shuffled\n", uncoded2)
	fmt.Printf("  coded   r=2 (Fig 1b): %2.0f coded packets multicast (2x gain)\n", coded2)
	fmt.Println()

	// Live demonstration: CodedTeraSort with K=3, r=2 forms exactly
	// C(3,3) = 1 multicast group of all three nodes, in which each node
	// multicasts exactly one coded packet — the 3 transmissions of Fig 1b.
	job, err := cluster.RunLocal(cluster.Spec{
		Algorithm: cluster.AlgCoded, K: k, R: 2, Rows: 60_000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	var ops int64
	for _, w := range job.Workers {
		ops += w.MulticastOps
	}
	fmt.Printf("Live run (60k records): %d coded packets multicast, %.2f MB total\n",
		ops, float64(job.ShuffleLoadBytes)/1e6)
	if ops != 3 {
		log.Fatalf("expected exactly 3 coded packets (Fig 1b), got %d", ops)
	}

	tera, err := cluster.RunLocal(cluster.Spec{
		Algorithm: cluster.AlgTeraSort, K: k, Rows: 60_000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TeraSort on the same input: %d unicast messages, %.2f MB total\n",
		k*(k-1), float64(tera.ShuffleLoadBytes)/1e6)
	fmt.Printf("Measured load gain: %.2fx (theory for K=3, r=2 vs r=1: %.1fx)\n",
		float64(tera.ShuffleLoadBytes)/float64(job.ShuffleLoadBytes),
		model.UncodedLoad(k, 1)/model.CodedLoad(k, 2))
}
