#!/usr/bin/env bash
# service_smoke.sh — end-to-end smoke of the sortd service: build the
# daemon and its client, start the daemon, submit concurrent jobs from two
# tenants (mixed engines, one with an injected mid-Map kill), verify every
# job finishes validated, scrape /metrics for the per-tenant counters, and
# drain with SIGTERM. Every wait is bounded so CI can never hang here.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="$(mktemp -d)"
SORTD_PID=""

cleanup() {
    if [[ -n "$SORTD_PID" ]] && kill -0 "$SORTD_PID" 2>/dev/null; then
        kill -KILL "$SORTD_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build sortd + sortctl"
go build -o "$WORK/" ./cmd/sortd ./cmd/sortctl

echo "== start sortd"
"$WORK/sortd" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -slots 6 -spill "$WORK/spill" -drain-timeout 60s \
    -tenant acme:5 -tenant guest:1 >"$WORK/sortd.log" 2>&1 &
SORTD_PID=$!

# Bounded wait for the daemon to publish its address.
for _ in $(seq 1 100); do
    [[ -s "$WORK/addr" ]] && break
    kill -0 "$SORTD_PID" 2>/dev/null || { echo "sortd died at startup"; cat "$WORK/sortd.log"; exit 1; }
    sleep 0.1
done
[[ -s "$WORK/addr" ]] || { echo "sortd never wrote its address"; exit 1; }
ADDR="$(cat "$WORK/addr")"
echo "   sortd at $ADDR (pid $SORTD_PID)"

CTL=("$WORK/sortctl")
SUBMIT=("${CTL[@]}" submit -addr "$ADDR" -timeout 120s -wait)

echo "== submit 4 concurrent jobs from 2 tenants"
"${SUBMIT[@]}" -tenant acme -k 3 -rows 30000 >"$WORK/job1.json" 2>&1 &
P1=$!
"${SUBMIT[@]}" -tenant acme -coded -k 3 -r 2 -rows 30000 >"$WORK/job2.json" 2>&1 &
P2=$!
"${SUBMIT[@]}" -tenant guest -k 3 -rows 20000 -membudget 65536 -spilldir "$WORK/spill" >"$WORK/job3.json" 2>&1 &
P3=$!
"${SUBMIT[@]}" -tenant guest -coded -k 3 -r 2 -rows 20000 \
    -fault 1:Map:kill -deadline 500ms -max-attempts 2 >"$WORK/job4.json" 2>&1 &
P4=$!

FAIL=0
for p in "$P1" "$P2" "$P3" "$P4"; do
    wait "$p" || FAIL=1
done
if [[ "$FAIL" != 0 ]]; then
    echo "a submission failed:"; cat "$WORK"/job*.json; cat "$WORK/sortd.log"; exit 1
fi

echo "== verify every job finished validated"
for f in "$WORK"/job*.json; do
    grep -q '"state": "done"' "$f" || { echo "$f not done"; cat "$f"; exit 1; }
    grep -q '"validated": true' "$f" || { echo "$f not validated"; cat "$f"; exit 1; }
done
# The faulted job must show the supervisor's recovery.
grep -q '"attempts": 2' "$WORK/job4.json" || { echo "faulted job did not recover"; cat "$WORK/job4.json"; exit 1; }

echo "== scrape /metrics"
"${CTL[@]}" metrics -addr "$ADDR" -timeout 30s >"$WORK/metrics.txt"
for want in \
    'sortd_tenant_jobs_finished_total{tenant="acme",outcome="done"} 2' \
    'sortd_tenant_jobs_finished_total{tenant="guest",outcome="done"} 2' \
    'sortd_tenant_jobs_recovered_total{tenant="guest"} 1' \
    'sortd_stage_seconds_total{stage="Map"}' \
    'sortd_spilled_runs_total'
do
    grep -qF "$want" "$WORK/metrics.txt" || {
        echo "metrics missing: $want"; cat "$WORK/metrics.txt"; exit 1; }
done

echo "== SIGTERM drain"
kill -TERM "$SORTD_PID"
for _ in $(seq 1 300); do
    kill -0 "$SORTD_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SORTD_PID" 2>/dev/null; then
    echo "sortd did not exit within 30s of SIGTERM"; cat "$WORK/sortd.log"; exit 1
fi
wait "$SORTD_PID" 2>/dev/null || { echo "sortd exited nonzero"; cat "$WORK/sortd.log"; exit 1; }
SORTD_PID=""
grep -q "exit" "$WORK/sortd.log" || { echo "no clean exit logged"; cat "$WORK/sortd.log"; exit 1; }

echo "service smoke OK"
