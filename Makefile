GO ?= go

.PHONY: all build vet fmt-check lint docs-check examples-smoke test race fuzz largek-smoke bench bench-smoke bench-compare cover cover-gate service-smoke vuln ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting is part of the gate: gofmt -l lists offenders, and any output
# fails the target.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Docs gate: every package and command must carry a godoc comment
# ("// Package ..." or "// Command ...") in a non-test file. Keeps the
# package-level documentation from rotting as the tree grows.
docs-check:
	@fail=0; \
	for dir in $$($(GO) list -f '{{.Dir}}' ./...); do \
		files=$$(find "$$dir" -maxdepth 1 -name '*.go' ! -name '*_test.go'); \
		if ! grep -qE '^// (Package|Command) ' $$files; then \
			echo "docs gate: missing package doc comment in $$dir"; fail=1; fi; \
	done; \
	if [ "$$fail" -ne 0 ]; then exit 1; fi; \
	echo "docs gate: every package and command documented"

# Examples must keep compiling (and vetting) — they are the README's
# executable documentation.
examples-smoke:
	$(GO) build ./examples/...
	$(GO) vet ./examples/...

test:
	$(GO) test ./...

# Static analysis beyond vet: staticcheck, pinned in CI so the required
# gate only changes when deliberately bumped. Offline machines without the
# tool skip with a notice instead of failing (the govulncheck pattern).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"; \
	fi

# The race wall: the pipelined engines are concurrent by construction
# (per-source receive goroutines, windowed senders, spilling receivers), so
# the race detector is part of the standard gate, not an optional extra.
# -shuffle=on randomizes test order so inter-test state dependencies
# cannot hide; the seed is printed for replay on failure.
race:
	$(GO) test -race -shuffle=on ./...

# Short fuzz smoke over the wire- and disk-facing surfaces (chunk framing,
# packed IVs, coded packets, spill-file blocks) plus the resolvable-design
# generator, whose invariants every large-K shuffle depends on. One shell
# with set -e so the first failing fuzz target fails the whole recipe fast
# — no later invocation can mask it. CI-friendly: seconds, not hours.
fuzz:
	set -e; \
	for target in FuzzOpenChunk FuzzChunkStream FuzzUnpackIV; do \
		$(GO) test -run=Fuzz -fuzz=$$target -fuzztime=5s ./internal/codec/ || exit 1; \
	done; \
	$(GO) test -run=Fuzz -fuzz='FuzzRunReader$$' -fuzztime=5s ./internal/extsort/
	$(GO) test -run=Fuzz -fuzz='FuzzRunReaderV2$$' -fuzztime=5s ./internal/extsort/
	$(GO) test -run=Fuzz -fuzz=FuzzMapReduceKernels -fuzztime=5s ./internal/mapreduce/
	$(GO) test -run=Fuzz -fuzz=FuzzDesign -fuzztime=5s ./internal/placement/resolvable/
	$(GO) test -run=Fuzz -fuzz=FuzzSplitters -fuzztime=5s ./internal/partition/

# Large-K smoke: the K=64 resolvable sort over multiplexed logical ranks,
# checksum-tied to the uncoded oracle. Also runs (race-enabled) inside the
# `race` target; this standalone entry is the fast local check.
largek-smoke:
	$(GO) test -run=TestLargeKResolvableMux -count=1 ./internal/cluster/

bench:
	$(GO) test -run=XXX -bench=. -benchmem ./...
	$(GO) run ./cmd/benchjson -out BENCH_pipeline.json

# One-iteration benchmark pass: compiles and executes every benchmark once
# (including the parallel sort/scatter/codec kernels) so the bench suite
# cannot bit-rot; wired into CI. Timing output is meaningless at 1x.
bench-smoke:
	$(GO) test -run=XXX -bench=. -benchtime=1x ./...

# Coverage summary: per-function tail plus the total line, for the CI log
# and local spot checks.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -n 20

# Coverage floor on the framework-critical packages: the stage-graph
# runtime, the MapReduce layer riding it, the multi-tenant serving layer,
# and the partitioner (the one component every reducer's balance and every
# splitter agreement depends on) must keep >= 80% statement coverage.
COVER_GATE_PKGS = ./internal/engine ./internal/mapreduce ./internal/service ./internal/partition
COVER_GATE_MIN  = 80
cover-gate:
	@fail=0; \
	for pkg in $(COVER_GATE_PKGS); do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover gate: no coverage figure for $$pkg"; fail=1; continue; fi; \
		ok=$$(awk "BEGIN{print ($$pct >= $(COVER_GATE_MIN)) ? 1 : 0}"); \
		if [ "$$ok" -ne 1 ]; then \
			echo "cover gate: $$pkg at $$pct% (< $(COVER_GATE_MIN)% floor)"; fail=1; \
		else \
			echo "cover gate: $$pkg at $$pct% (floor $(COVER_GATE_MIN)%)"; \
		fi; \
	done; \
	if [ "$$fail" -ne 0 ]; then exit 1; fi

# End-to-end service smoke: build sortd and sortctl, start the daemon,
# run concurrent multi-tenant jobs (including an injected-fault recovery),
# scrape /metrics, and drain via SIGTERM. Every wait inside is bounded so
# the target can never hang a CI runner.
service-smoke:
	./scripts/service_smoke.sh

# Advisory benchmark comparison against the committed baseline: one quick
# iteration per workload at the baseline's row count, timing ratios
# printed for information only, hard failure only when a workload shuffles
# more than 2x its baseline's bytes (shuffle byte counts are deterministic
# per spec; wall-clock on shared runners is not).
bench-compare:
	$(GO) run ./cmd/benchjson -out $${TMPDIR:-/tmp}/bench_fresh.json -benchtime 1ms -compare BENCH_pipeline.json

# Known-vulnerability scan over the module and its call graph. Part of the
# gate where the tool is installed (CI installs it); offline machines skip
# with a notice instead of failing.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

ci: build vet fmt-check lint docs-check examples-smoke race largek-smoke cover-gate service-smoke vuln
