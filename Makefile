GO ?= go

.PHONY: all build vet test race fuzz bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race wall: the pipelined engines are concurrent by construction
# (per-source receive goroutines, windowed senders), so the race detector
# is part of the standard gate, not an optional extra.
race:
	$(GO) test -race ./...

# Short fuzz smoke over the wire-facing surfaces (chunk framing, packed
# IVs, coded packets). CI-friendly: seconds, not hours.
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzOpenChunk -fuzztime=5s ./internal/codec/
	$(GO) test -run=Fuzz -fuzz=FuzzChunkStream -fuzztime=5s ./internal/codec/
	$(GO) test -run=Fuzz -fuzz=FuzzUnpackIV -fuzztime=5s ./internal/codec/

bench:
	$(GO) test -run=XXX -bench=. -benchmem ./...

ci: build vet race
