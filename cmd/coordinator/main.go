// Command coordinator is the control node of the distributed deployment
// (paper Fig 8): it waits for K workers to register over TCP, distributes
// the job spec and mesh addresses, triggers the run, validates the output
// checksums, and prints the aggregated stage table.
//
// Usage:
//
//	coordinator -listen :7077 -alg codedterasort -k 4 -r 2 -rows 1000000
//	(then start 4 `worker -coord host:7077` processes)
package main

import (
	"flag"
	"fmt"
	"os"

	"codedterasort/internal/cluster"
	"codedterasort/internal/stats"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7077", "address to accept worker registrations on")
	alg := flag.String("alg", "codedterasort", "algorithm: terasort or codedterasort")
	k := flag.Int("k", 4, "number of workers")
	r := flag.Int("r", 2, "redundancy parameter (codedterasort)")
	rows := flag.Int64("rows", 100000, "input size in records")
	seed := flag.Uint64("seed", 2017, "input generator seed")
	skewed := flag.Bool("skewed", false, "skewed input keys")
	tree := flag.Bool("tree", false, "binomial-tree multicast")
	rate := flag.Float64("rate", 0, "per-node egress cap in Mbps")
	chunk := flag.Int("chunk", 0, "streaming pipelined shuffle chunk size in records (0 = monolithic stages)")
	window := flag.Int("window", 0, "in-flight chunk window per stream (0 = engine default)")
	memBudget := flag.Int64("membudget", 0, "per-worker memory budget in bytes: workers spill sorted runs to local disk (0 = fully in-memory)")
	spillDir := flag.String("spilldir", "", "parent directory for worker spill files (default system temp)")
	procs := flag.Int("procs", 0, "per-worker compute goroutines, distributed with the spec (0 = each worker uses all its cores, 1 = sequential)")
	flag.Parse()

	spec := cluster.Spec{
		Algorithm: cluster.Algorithm(*alg),
		K:         *k, R: *r, Rows: *rows, Seed: *seed,
		Skewed: *skewed, TreeMulticast: *tree, RateMbps: *rate,
		ChunkRows: *chunk, Window: *window,
		MemBudget: *memBudget, SpillDir: *spillDir,
		Parallelism: *procs,
	}
	if spec.Algorithm == cluster.AlgTeraSort {
		spec.R = 0
	}
	coord, err := cluster.NewCoordinator(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
	defer coord.Close()
	fmt.Printf("coordinator: listening on %s, waiting for %d workers...\n", coord.Addr(), *k)
	job, err := coord.RunJob(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
	fmt.Printf("job complete: validated=%v, shuffle load %.2f MB, wire %.2f MB\n",
		job.Validated, float64(job.ShuffleLoadBytes)/1e6, float64(job.WireBytes)/1e6)
	if *memBudget > 0 {
		fmt.Printf("external sort: %d runs spilled under a %.1f MB/worker budget\n",
			job.SpilledRuns, float64(*memBudget)/1e6)
	}
	fmt.Print(stats.RenderTable("", []stats.Row{{Label: string(spec.Algorithm), Times: job.Times}}))
}
