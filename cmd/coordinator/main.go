// Command coordinator is the control node of the distributed deployment
// (paper Fig 8): it waits for K workers to register over TCP, distributes
// the job spec and mesh addresses, triggers the run, validates the output
// checksums, and prints the aggregated stage table.
//
// Usage:
//
//	coordinator -listen :7077 -alg codedterasort -k 4 -r 2 -rows 1000000
//	(then start 4 `worker -coord host:7077` processes)
//
// With -deadline the monitored protocol is armed: workers stream per-stage
// progress and heartbeats, and a worker that dies or falls a deadline
// behind its fastest peer aborts the job fast with the suspect named
// instead of hanging it. -stragglers (with -rate or -permsg) injects one
// egress-slowed rank to observe the coded-vs-uncoded degradation live.
package main

import (
	"flag"
	"fmt"
	"os"

	"codedterasort/cmd/internal/flags"
	"codedterasort/internal/cluster"
	"codedterasort/internal/stats"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7077", "address to accept worker registrations on")
	alg := flag.String("alg", "codedterasort", "algorithm: terasort or codedterasort")
	var j flags.Job
	j.RegisterCommon(flag.CommandLine, 4)
	j.RegisterCoded(flag.CommandLine, 2)
	j.RegisterFaults(flag.CommandLine)
	flag.Parse()

	spec := j.Spec(cluster.Algorithm(*alg))
	coord, err := cluster.NewCoordinator(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
	defer coord.Close()
	fmt.Printf("coordinator: listening on %s, waiting for %d workers...\n", coord.Addr(), j.K)
	job, err := coord.RunJob(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
	fmt.Printf("job complete: validated=%v, shuffle load %.2f MB, wire %.2f MB\n",
		job.Validated, float64(job.ShuffleLoadBytes)/1e6, float64(job.WireBytes)/1e6)
	if j.MemBudget > 0 {
		fmt.Printf("external sort: %d runs spilled under a %.1f MB/worker budget\n",
			job.SpilledRuns, float64(j.MemBudget)/1e6)
	}
	fmt.Print(stats.RenderTable("", []stats.Row{{Label: string(spec.Algorithm), Times: job.Times}}))
}
