// Command loadmodel prints the theory the paper builds on: the Fig 2
// computation/communication tradeoff curve (coded vs uncoded load as a
// function of the computation load r) and the Section III-B analysis of
// Table I — the optimal redundancy r* and the theoretical speedup bound.
//
// Usage:
//
//	loadmodel                  # Fig 2 curve for K=10 plus the Table I analysis
//	loadmodel -k 16
//	loadmodel -k 16 -stragglers 4   # + the straggler-penalty theory table
package main

import (
	"flag"
	"fmt"

	"codedterasort/internal/model"
	"codedterasort/internal/simnet"
	"codedterasort/internal/stats"
)

func main() {
	k := flag.Int("k", 10, "number of nodes K for the load curve")
	stragglers := flag.Float64("stragglers", 0,
		"print the Eq. 4-level penalty of one rank with shuffle egress slowed by this factor")
	flag.Parse()

	fmt.Printf("Fig 2: communication load vs computation load r (K=%d)\n", *k)
	fmt.Printf("%4s  %12s  %12s  %6s\n", "r", "uncoded L", "coded L", "gain")
	for _, p := range model.LoadCurve(*k) {
		gain := 0.0
		if p.Coded > 0 {
			gain = p.Uncoded / p.Coded
		}
		fmt.Printf("%4.0f  %12.4f  %12.4f  %5.1fx\n", p.R, p.Uncoded, p.Coded, gain)
	}
	fmt.Println()

	// Section III-B: plug the measured Table I times into Eq. 4/5.
	t1 := simnet.PaperRows12GB[0].Times
	m := model.TimeModel{
		TMap:     t1[stats.StageMap],
		TShuffle: t1[stats.StageShuffle],
		TReduce:  t1[stats.StageReduce],
	}
	fmt.Println("Section III-B analysis of Table I (TeraSort, 12 GB, K=16):")
	fmt.Printf("  baseline total (Eq. 3):     %8.2f s\n", m.Baseline().Seconds())
	fmt.Printf("  optimal redundancy r*:      %8d   (ceil sqrt(Tshuffle/Tmap) = ceil sqrt(%.2f/%.2f))\n",
		m.RStar(), m.TShuffle.Seconds(), m.TMap.Seconds())
	fmt.Printf("  optimal total (Eq. 5):      %8.2f s\n", m.OptimalTotal().Seconds())
	fmt.Printf("  theoretical speedup bound:  %8.2fx  (the paper's ~10x)\n", m.OptimalSpeedup())
	fmt.Println()
	fmt.Println("Eq. 4 totals and speedups at the evaluated redundancies (K=16):")
	for _, r := range []int{1, 3, 5} {
		fmt.Printf("  r=%d: T=%8.2f s  speedup %.2fx (finite-K exact: %.2fx)\n",
			r, m.Total(float64(r)).Seconds(), m.Speedup(float64(r)),
			m.Baseline().Seconds()/m.TotalExact(16, float64(r)).Seconds())
	}

	if f := *stragglers; f > 1 {
		fmt.Println()
		fmt.Printf("Straggler penalty of one rank with %gx slower shuffle egress (K=16, serial schedule):\n", f)
		fmt.Printf("%4s  %12s %12s  %6s\n", "r", "delta (s)", "total (s)", "ratio")
		for _, r := range []int{1, 2, 3, 5} {
			d := m.StragglerDelta(float64(r), 16, f)
			total := m.Total(float64(r)) + d
			fmt.Printf("%4d  %12.2f %12.2f  %5.3fx\n",
				r, d.Seconds(), total.Seconds(), total.Seconds()/m.Total(float64(r)).Seconds())
		}
		fmt.Println("The absolute penalty shrinks by ~r: coding's load reduction doubles as straggler resilience.")
	}
}
