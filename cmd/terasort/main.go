// Command terasort runs the conventional TeraSort baseline (paper Section
// III) on an in-process cluster of K workers, optionally traffic-shaped to
// emulate the paper's 100 Mbps EC2 configuration, and prints the stage
// breakdown in the layout of the paper's Table I.
//
// Usage:
//
//	terasort -k 8 -rows 1000000
//	terasort -k 16 -rows 1200000 -rate 100 -permsg 5ms
//	terasort -k 8 -indir /data/input -membudget 67108864
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"codedterasort/internal/cluster"
	"codedterasort/internal/stats"
)

func main() {
	k := flag.Int("k", 8, "number of worker nodes")
	rows := flag.Int64("rows", 100000, "input size in 100-byte records")
	seed := flag.Uint64("seed", 2017, "input generator seed")
	skewed := flag.Bool("skewed", false, "skewed input keys")
	rate := flag.Float64("rate", 0, "per-node egress cap in Mbps (0 = unlimited)")
	perMsg := flag.Duration("permsg", 0, "fixed per-message overhead")
	chunk := flag.Int("chunk", 0, "streaming pipelined shuffle chunk size in records (0 = monolithic stages)")
	window := flag.Int("window", 0, "in-flight chunk window per stream (0 = engine default)")
	memBudget := flag.Int64("membudget", 0, "per-worker memory budget in bytes: spill sorted runs to disk and merge-stream the reduce (0 = fully in-memory)")
	spillDir := flag.String("spilldir", "", "parent directory for spill files (default system temp)")
	inDir := flag.String("indir", "", "read input from the part files teragen -disk wrote here instead of generating it")
	procs := flag.Int("procs", 0, "per-worker compute goroutines for map/sort/spill hot paths (0 = all cores, 1 = sequential); output is identical at any setting")
	flag.Parse()

	spec := cluster.Spec{
		Algorithm: cluster.AlgTeraSort,
		K:         *k, Rows: *rows, Seed: *seed, Skewed: *skewed,
		RateMbps: *rate, PerMessage: *perMsg,
		ChunkRows: *chunk, Window: *window,
		MemBudget: *memBudget, SpillDir: *spillDir, InputDir: *inDir,
		Parallelism: *procs,
	}
	start := time.Now()
	job, err := cluster.RunLocal(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "terasort:", err)
		os.Exit(1)
	}
	totalRows := *rows
	if *inDir != "" {
		// File-backed input: the part files, not -rows, define the size.
		totalRows = 0
		for _, w := range job.Workers {
			totalRows += w.OutputRows
		}
	}
	fmt.Printf("TeraSort: K=%d, %d records (%.1f MB), validated=%v, wall time %.2fs\n",
		*k, totalRows, float64(totalRows)*100/1e6, job.Validated, time.Since(start).Seconds())
	fmt.Print(stats.RenderTable("", []stats.Row{{Label: "TeraSort", Times: job.Times}}))
	fmt.Printf("shuffle payload: %.2f MB (load %.3f of input)\n",
		float64(job.ShuffleLoadBytes)/1e6, float64(job.ShuffleLoadBytes)/(float64(totalRows)*100))
	if job.ChunksShuffled > 0 {
		fmt.Printf("pipelined shuffle: %d chunks\n", job.ChunksShuffled)
	}
	if *memBudget > 0 {
		fmt.Printf("external sort: %d runs spilled under a %.1f MB/worker budget\n",
			job.SpilledRuns, float64(*memBudget)/1e6)
	}
}
