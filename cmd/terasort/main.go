// Command terasort runs the conventional TeraSort baseline (paper Section
// III) on an in-process cluster of K workers, optionally traffic-shaped to
// emulate the paper's 100 Mbps EC2 configuration, and prints the stage
// breakdown in the layout of the paper's Table I.
//
// Usage:
//
//	terasort -k 8 -rows 1000000
//	terasort -k 16 -rows 1200000 -rate 100 -permsg 5ms
//	terasort -k 8 -indir /data/input -membudget 67108864
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"codedterasort/cmd/internal/flags"
	"codedterasort/internal/cluster"
	"codedterasort/internal/stats"
)

func main() {
	var j flags.Job
	j.RegisterCommon(flag.CommandLine, 8)
	j.RegisterInDir(flag.CommandLine)
	j.RegisterFaults(flag.CommandLine)
	flag.Parse()

	spec := j.Spec(cluster.AlgTeraSort)
	start := time.Now()
	job, err := cluster.RunLocal(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "terasort:", err)
		os.Exit(1)
	}
	totalRows := j.Rows
	if j.InDir != "" {
		// File-backed input: the part files, not -rows, define the size.
		totalRows = 0
		for _, w := range job.Workers {
			totalRows += w.OutputRows
		}
	}
	fmt.Printf("TeraSort: K=%d, %d records (%.1f MB), validated=%v, wall time %.2fs\n",
		j.K, totalRows, float64(totalRows)*100/1e6, job.Validated, time.Since(start).Seconds())
	fmt.Print(stats.RenderTable("", []stats.Row{{Label: "TeraSort", Times: job.Times}}))
	fmt.Printf("shuffle payload: %.2f MB (load %.3f of input)\n",
		float64(job.ShuffleLoadBytes)/1e6, float64(job.ShuffleLoadBytes)/(float64(totalRows)*100))
	if job.ChunksShuffled > 0 {
		fmt.Printf("pipelined shuffle: %d chunks\n", job.ChunksShuffled)
	}
	if j.MemBudget > 0 {
		fmt.Printf("external sort: %d runs spilled under a %.1f MB/worker budget\n",
			job.SpilledRuns, float64(j.MemBudget)/1e6)
	}
	if job.Attempts > 1 {
		fmt.Printf("recovery: %d attempts, recovered from %v\n", job.Attempts, job.Recovered)
	}
}
