// Command codedmr runs a registered MapReduce kernel on the in-process
// coded-MapReduce framework — the paper's "Beyond Sorting Algorithms"
// direction (Section VI) as a command. The kernel's map/reduce pair rides
// the same engines, knobs and recovery as the sorters: -r picks coded
// (r >= 2) or uncoded execution, and -compare runs both and reports the
// communication-load gain alongside a byte-equality check of the outputs.
//
// Usage:
//
//	codedmr -kernel wordcount -k 6 -r 3 -rows 200000
//	codedmr -kernel grep -pattern QQ -rows 300000 -compare
//	codedmr -list
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"codedterasort/cmd/internal/flags"
	"codedterasort/internal/kv"
	"codedterasort/internal/mapreduce"
	"codedterasort/internal/stats"
	"codedterasort/internal/transport"
)

func main() {
	var j flags.Job
	j.RegisterCommon(flag.CommandLine, 6)
	j.RegisterCoded(flag.CommandLine, 3)
	kernel := flag.String("kernel", "wordcount", "registered kernel to run (see -list)")
	pattern := flag.String("pattern", "QQ", "pattern the grep kernel selects on")
	compare := flag.Bool("compare", false, "also run the uncoded baseline and report the load gain")
	list := flag.Bool("list", false, "list the registered kernels and exit")
	show := flag.Int("show", 0, "print the first N reduced records of each rank")
	// The MR supervisor has no deadline-based straggler detection (that
	// lives in the sorting cluster runtime), so only the injection and
	// recovery-cap knobs of the fault surface apply here.
	flag.Float64Var(&j.Stragglers, "stragglers", 0,
		"inject one straggler: slow the straggler rank's egress by this factor (0 or 1 = healthy; effective with -rate or -permsg)")
	flag.IntVar(&j.StragglerRank, "straggler-rank", 0, "which rank the -stragglers injection slows")
	flag.IntVar(&j.MaxAttempts, "max-attempts", 0, "recovery attempt cap for supervised runs (0 = fit to injected faults)")
	flag.Parse()

	if *list {
		for _, k := range mapreduce.Kernels() {
			fmt.Printf("%-14s %s\n", k.Name, k.Doc)
		}
		return
	}
	kern, ok := mapreduce.Lookup(*kernel)
	if !ok {
		fmt.Fprintf(os.Stderr, "codedmr: unknown kernel %q (try -list)\n", *kernel)
		os.Exit(1)
	}
	if kern.Name == "grep" {
		kern = mapreduce.Grep(*pattern)
	}

	job := buildJob(kern, &j)
	opts := mapreduce.LocalOptions{
		RateMbps: j.Rate, PerMessage: j.PerMsg,
		StragglerFactor: j.Stragglers, StragglerRank: j.StragglerRank,
		MaxAttempts: j.MaxAttempts,
	}
	start := time.Now()
	rep, err := mapreduce.RunLocal(job, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codedmr:", err)
		os.Exit(1)
	}
	engine := "uncoded"
	if j.R >= 2 {
		engine = fmt.Sprintf("coded r=%d", j.R)
	}
	fmt.Printf("%s (%s): K=%d, %d input records -> %d reduced records, wall time %.2fs\n",
		kern.Name, engine, j.K, j.Rows, rep.Rows, time.Since(start).Seconds())
	if rep.Attempts > 1 {
		fmt.Printf("recovery: %d attempts, recovered from %v\n", rep.Attempts, rep.Recovered)
	}

	if *compare {
		base := buildJob(kern, &j)
		base.R = 0
		baseRep, err := mapreduce.RunLocal(base, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codedmr: baseline:", err)
			os.Exit(1)
		}
		rows := []stats.Row{
			{Label: "uncoded", Times: baseRep.Times},
			{Label: fmt.Sprintf("coded: r=%d", j.R), Times: rep.Times,
				Speedup: baseRep.Times.Total().Seconds() / rep.Times.Total().Seconds()},
		}
		fmt.Print(stats.RenderTable("", rows))
		fmt.Printf("communication load: uncoded %.2f MB vs coded %.2f MB (gain %.2fx)\n",
			float64(baseRep.ShuffleLoadBytes)/1e6, float64(rep.ShuffleLoadBytes)/1e6,
			float64(baseRep.ShuffleLoadBytes)/float64(rep.ShuffleLoadBytes))
		if !sameOutput(rep, baseRep) {
			fmt.Fprintln(os.Stderr, "codedmr: coded and uncoded outputs differ")
			os.Exit(1)
		}
		fmt.Println("coded and uncoded reduced outputs are byte-identical")
	} else {
		fmt.Print(stats.RenderTable("", []stats.Row{{Label: kern.Name, Times: rep.Times}}))
		fmt.Printf("shuffle payload: %.2f MB\n", float64(rep.ShuffleLoadBytes)/1e6)
	}
	if rep.ChunksShuffled > 0 {
		fmt.Printf("pipelined shuffle: %d chunk packets\n", rep.ChunksShuffled)
	}
	if j.MemBudget > 0 {
		fmt.Printf("external sort: %d runs spilled under a %.1f MB/worker budget\n",
			rep.SpilledRuns, float64(j.MemBudget)/1e6)
	}
	if *show > 0 {
		printSample(rep, *show)
	}
}

// buildJob folds the parsed flags onto the kernel's job.
func buildJob(kern mapreduce.Kernel, j *flags.Job) mapreduce.Job {
	job := kern.Job(j.K, j.R, j.Rows, j.Seed)
	if j.Skewed {
		job.Dist = kv.DistSkewed
	}
	if j.Tree {
		job.Strategy = transport.BcastBinomialTree
	}
	job.ChunkRows, job.Window = j.Chunk, j.Window
	job.MemBudget, job.SpillDir = j.MemBudget, j.SpillDir
	job.Parallelism = j.Procs
	return job
}

// sameOutput reports whether two runs reduced to identical bytes per rank.
func sameOutput(a, b *mapreduce.Report) bool {
	if len(a.PerRank) != len(b.PerRank) {
		return false
	}
	for rank := range a.PerRank {
		if !bytes.Equal(a.Output(rank).Bytes(), b.Output(rank).Bytes()) {
			return false
		}
	}
	return true
}

// printSample prints the head of each rank's reduced output.
func printSample(rep *mapreduce.Report, n int) {
	for rank := range rep.PerRank {
		out := rep.Output(rank)
		fmt.Printf("rank %d (%d records):\n", rank, out.Len())
		for i := 0; i < out.Len() && i < n; i++ {
			fmt.Printf("  %-10s -> %s\n",
				mapreduce.TrimPad(out.Key(i)), mapreduce.TrimPad(out.Value(i)))
		}
	}
}
