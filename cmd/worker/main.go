// Command worker is one compute node of the distributed deployment (paper
// Fig 8): it registers with the coordinator, joins the TCP worker mesh,
// executes its share of the assigned sorting job, and reports its stage
// times and output checksum.
//
// Usage:
//
//	worker -coord host:7077
package main

import (
	"flag"
	"fmt"
	"os"

	"codedterasort/internal/cluster"
)

func main() {
	coord := flag.String("coord", "127.0.0.1:7077", "coordinator address")
	meshHost := flag.String("mesh-host", "127.0.0.1", "interface to bind the worker mesh listener")
	procs := flag.Int("procs", 0, "override the spec's per-worker compute goroutines on this node (0 = use the coordinator-distributed setting)")
	flag.Parse()

	if err := cluster.RunWorker(*coord, cluster.WorkerOptions{MeshHost: *meshHost, Parallelism: *procs}); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	fmt.Println("worker: job complete, report delivered")
}
