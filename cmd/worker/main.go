// Command worker is one compute node of the distributed deployment (paper
// Fig 8): it registers with the coordinator, joins the TCP worker mesh,
// executes its share of the assigned sorting job, and reports its stage
// times and output checksum. With -v it prints each stage as it completes,
// fed by the engine runtime's per-stage hooks.
//
// Usage:
//
//	worker -coord host:7077
//	worker -coord host:7077 -procs 2 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"codedterasort/cmd/internal/flags"
	"codedterasort/internal/cluster"
	"codedterasort/internal/stats"
)

func main() {
	coord := flag.String("coord", "127.0.0.1:7077", "coordinator address")
	meshHost := flag.String("mesh-host", "127.0.0.1", "interface to bind the worker mesh listener")
	verbose := flag.Bool("v", false, "print each stage as it completes")
	var j flags.Job
	j.RegisterProcs(flag.CommandLine, "override the spec's per-worker compute goroutines on this node (0 = use the coordinator-distributed setting)")
	flag.Parse()

	opts := cluster.WorkerOptions{MeshHost: *meshHost, Parallelism: j.Procs}
	if *verbose {
		opts.OnStage = func(stage stats.Stage, elapsed time.Duration) {
			fmt.Printf("worker: stage %-13s done in %v\n", stage, elapsed)
		}
	}
	if err := cluster.RunWorker(*coord, opts); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	fmt.Println("worker: job complete, report delivered")
}
