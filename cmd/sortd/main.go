// Command sortd is the multi-tenant sort service daemon: it serves the
// internal/service HTTP JSON API (submit, status, metrics, drain) over
// one shared worker pool, so many tenants' sort jobs run concurrently in
// one process instead of one-shot CLI invocations. SIGTERM or SIGINT (or
// POST /v1/drain) starts a graceful drain: admission stops, running jobs
// get -drain-timeout to finish, stragglers are checkpoint-canceled, and
// the process exits.
//
// Usage:
//
//	sortd -addr 127.0.0.1:8371 -slots 8
//	sortd -addr 127.0.0.1:0 -addr-file /tmp/sortd.addr \
//	      -tenant acme:10:5:10 -tenant guest:1:0.5:2:4:1
//
// Each -tenant defines admission limits as
// name:priority[:rate[:burst[:maxqueued[:maxrunning]]]]; tenants not
// defined get permissive defaults on first use.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"codedterasort/internal/service"
	"codedterasort/internal/service/tenant"
)

// tenantFlag is one parsed -tenant definition.
type tenantFlag struct {
	name   string
	limits tenant.Limits
}

// tenantFlags collects repeated -tenant values.
type tenantFlags []tenantFlag

func (t *tenantFlags) String() string {
	names := make([]string, len(*t))
	for i, tf := range *t {
		names[i] = tf.name
	}
	return strings.Join(names, ",")
}

// Set parses name:priority[:rate[:burst[:maxqueued[:maxrunning]]]].
func (t *tenantFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if parts[0] == "" {
		return fmt.Errorf("tenant %q: empty name", v)
	}
	tf := tenantFlag{name: parts[0]}
	fields := []struct {
		name string
		set  func(string) error
	}{
		{"priority", func(s string) error {
			n, err := strconv.Atoi(s)
			tf.limits.Priority = n
			return err
		}},
		{"rate", func(s string) error {
			f, err := strconv.ParseFloat(s, 64)
			tf.limits.RatePerSec = f
			return err
		}},
		{"burst", func(s string) error {
			n, err := strconv.Atoi(s)
			tf.limits.Burst = n
			return err
		}},
		{"maxqueued", func(s string) error {
			n, err := strconv.Atoi(s)
			tf.limits.MaxQueued = n
			return err
		}},
		{"maxrunning", func(s string) error {
			n, err := strconv.Atoi(s)
			tf.limits.MaxRunning = n
			return err
		}},
	}
	if len(parts)-1 > len(fields) {
		return fmt.Errorf("tenant %q: too many fields (want name:priority[:rate[:burst[:maxqueued[:maxrunning]]]])", v)
	}
	for i, s := range parts[1:] {
		if s == "" {
			continue
		}
		if err := fields[i].set(s); err != nil {
			return fmt.Errorf("tenant %q: bad %s: %v", v, fields[i].name, err)
		}
	}
	*t = append(*t, tf)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sortd: ")
	addr := flag.String("addr", "127.0.0.1:8371", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	slots := flag.Int("slots", 8, "worker pool size shared by all concurrent jobs")
	queue := flag.Int("queue", 64, "global cap on queued jobs across all tenants")
	spill := flag.String("spill", "", "base directory for job-scoped spill namespaces (default system temp)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second,
		"how long a drain waits for running jobs before checkpoint-canceling them")
	var tenants tenantFlags
	flag.Var(&tenants, "tenant",
		"tenant admission limits as name:priority[:rate[:burst[:maxqueued[:maxrunning]]]] (repeatable)")
	flag.Parse()

	reg := tenant.NewRegistry(tenant.Limits{})
	for _, tf := range tenants {
		if err := reg.Define(tf.name, tf.limits); err != nil {
			log.Fatalf("-tenant %s: %v", tf.name, err)
		}
	}

	srv := service.New(service.Config{
		PoolSlots:    *slots,
		MaxQueue:     *queue,
		SpillRoot:    *spill,
		Tenants:      reg,
		DrainTimeout: *drainTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("listening on %s (slots=%d queue=%d tenants=[%s])", bound, *slots, *queue, tenants.String())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case s := <-sig:
		log.Printf("%v: draining (timeout %v)", s, *drainTimeout)
		if forced := srv.Drain(); forced {
			log.Print("drain timeout: running jobs checkpoint-canceled")
		}
	case <-srv.Drained():
		// Drain arrived over the API; nothing left to stop but the listener.
		log.Print("drained via API")
	case err := <-serveErr:
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Print("exit")
}
