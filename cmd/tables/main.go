// Command tables regenerates the paper's evaluation tables (Tables I, II
// and III: sorting 12 GB at 100 Mbps with K=16 and K=20 workers) on the
// virtual-time simulator, prints them in the paper's layout, and with
// -calibrate reports every simulated cell against the published
// measurement.
//
// Usage:
//
//	tables            # all three tables plus the published values
//	tables -table 2   # Table II only
//	tables -calibrate # per-cell paper-vs-simulation fit report
package main

import (
	"flag"
	"fmt"
	"os"

	"codedterasort/internal/simnet"
	"codedterasort/internal/stats"
)

func main() {
	table := flag.Int("table", 0, "table to print: 1, 2 or 3 (0 = all)")
	calibrate := flag.Bool("calibrate", false, "print the per-cell paper-vs-simulation comparison")
	flag.Parse()

	cm := simnet.Default()
	if *calibrate {
		cells, err := simnet.Compare(cm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Println("Calibration: simulated vs published cells (Tables I-III)")
		fmt.Print(simnet.RenderComparison(cells))
		return
	}

	specs := map[int]simnet.TableSpec{
		1: simnet.Table1Spec(),
		2: simnet.Table2Spec(),
		3: simnet.Table3Spec(),
	}
	order := []int{1, 2, 3}
	if *table != 0 {
		if _, ok := specs[*table]; !ok {
			fmt.Fprintf(os.Stderr, "tables: no table %d\n", *table)
			os.Exit(1)
		}
		order = []int{*table}
	}
	for _, id := range order {
		spec := specs[id]
		rows, err := simnet.GenerateTable(spec, cm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Print(stats.RenderTable(spec.Title+" (simulated)", rows))
		fmt.Println()
		// Published values for side-by-side comparison.
		var paperRows []stats.Row
		for _, pr := range simnet.PaperTable(spec.K) {
			if id == 1 && pr.Coded {
				continue
			}
			paperRows = append(paperRows, stats.Row{Label: pr.Label, Times: pr.Times, Speedup: pr.Speedup})
		}
		fmt.Print(stats.RenderTable(spec.Title+" (paper)", paperRows))
		fmt.Println()
	}
}
