// Command sortctl is the client for a running sortd: it submits jobs,
// watches them, lists a tenant's work, scrapes metrics and triggers
// graceful drain — the same HTTP JSON API the service tests and the CI
// smoke exercise, packaged for operators.
//
// Usage:
//
//	sortctl submit -addr 127.0.0.1:8371 -tenant acme -rows 100000 -wait
//	sortctl submit -tenant acme -coded -r 3 -k 6 -rows 200000
//	sortctl status -id job-000001
//	sortctl wait -id job-000001 -timeout 5m
//	sortctl list -tenant acme
//	sortctl metrics
//	sortctl drain
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	jobflags "codedterasort/cmd/internal/flags"
	"codedterasort/internal/cluster"
	"codedterasort/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(args)
	case "status":
		err = cmdStatus(args, false)
	case "wait":
		err = cmdStatus(args, true)
	case "list":
		err = cmdList(args)
	case "metrics":
		err = cmdMetrics(args)
	case "drain":
		err = cmdDrain(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sortctl %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sortctl {submit|status|wait|list|metrics|drain} [flags]")
	os.Exit(2)
}

// common binds the flags every subcommand shares and returns the getters.
func common(fs *flag.FlagSet) (addr *string, timeout *time.Duration) {
	addr = fs.String("addr", "127.0.0.1:8371", "sortd address")
	timeout = fs.Duration("timeout", 10*time.Minute, "overall deadline for this command")
	return
}

// faultFlags parses repeated -fault rank:stage:kind values into the
// spec's injected-fault list (exercising the service's recovery path from
// the command line).
type faultFlags struct {
	specs []cluster.FaultSpec
}

func (f *faultFlags) String() string { return fmt.Sprintf("%d faults", len(f.specs)) }

func (f *faultFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return fmt.Errorf("fault %q: want rank:stage:kind", v)
	}
	rank, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("fault %q: bad rank: %v", v, err)
	}
	f.specs = append(f.specs, cluster.FaultSpec{Rank: rank, Stage: parts[1], Kind: parts[2]})
	return nil
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("sortctl submit", flag.ExitOnError)
	addr, timeout := common(fs)
	tenantName := fs.String("tenant", "default", "tenant submitting the job")
	coded := fs.Bool("coded", false, "run CodedTeraSort instead of the uncoded baseline")
	wait := fs.Bool("wait", false, "block until the job finishes and print its final status")
	var faults faultFlags
	fs.Var(&faults, "fault", "inject a fault as rank:stage:kind (repeatable; kind kill or slow, pair with -deadline and -max-attempts for recovery)")
	var job jobflags.Job
	job.RegisterCommon(fs, 4)
	job.RegisterCoded(fs, 2)
	job.RegisterFaults(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	alg := cluster.AlgTeraSort
	if *coded {
		alg = cluster.AlgCoded
	}
	spec := job.Spec(alg)
	spec.Faults = faults.specs
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := service.NewClient(*addr)
	st, err := c.Submit(ctx, service.SubmitRequest{Tenant: *tenantName, Spec: spec})
	if err != nil {
		return err
	}
	if *wait {
		if st, err = c.WaitJob(ctx, st.ID); err != nil {
			return err
		}
	}
	return printJSON(st)
}

func cmdStatus(args []string, wait bool) error {
	name := "sortctl status"
	if wait {
		name = "sortctl wait"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	addr, timeout := common(fs)
	id := fs.String("id", "", "job ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := service.NewClient(*addr)
	var st service.JobStatus
	var err error
	if wait {
		st, err = c.WaitJob(ctx, *id)
	} else {
		st, err = c.Job(ctx, *id)
	}
	if err != nil {
		return err
	}
	if err := printJSON(st); err != nil {
		return err
	}
	if wait && st.State != service.StateDone {
		return fmt.Errorf("job %s finished %s", st.ID, st.State)
	}
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("sortctl list", flag.ExitOnError)
	addr, timeout := common(fs)
	tenantName := fs.String("tenant", "", "only this tenant's jobs (default all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	jobs, err := service.NewClient(*addr).Jobs(ctx, *tenantName)
	if err != nil {
		return err
	}
	return printJSON(jobs)
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("sortctl metrics", flag.ExitOnError)
	addr, timeout := common(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	m, err := service.NewClient(*addr).Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Print(m)
	return nil
}

func cmdDrain(args []string) error {
	fs := flag.NewFlagSet("sortctl drain", flag.ExitOnError)
	addr, timeout := common(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := service.NewClient(*addr).Drain(ctx); err != nil {
		return err
	}
	fmt.Println("draining")
	return nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
