// Command sweep simulates the Section V-C trend experiments at full 12 GB
// scale: the impact of the redundancy parameter r at fixed K, the impact
// of the worker count K at fixed r (including the optimal-r search where
// speedup peaks before CodeGen dominates), and the clique-vs-resolvable
// placement comparison showing the resolvable design's group-count win at
// large K. A final empirical table measures reducer load imbalance under
// uniform vs sample-based partitioning across the skewed key
// distributions — generated keys really partitioned, not a cost model.
//
// Usage:
//
//	sweep                  # r-sweep at K=16 and K-sweep at r=3
//	sweep -k 20 -r 5
//	sweep -stragglers 4    # + straggler and failure-recovery tables
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"codedterasort/internal/kv"
	"codedterasort/internal/simnet"
)

func main() {
	k := flag.Int("k", 16, "worker count for the r-sweep")
	r := flag.Int("r", 3, "redundancy for the K-sweep")
	stragglers := flag.Float64("stragglers", 0,
		"also sweep straggler resilience: slow one rank's shuffle egress by this factor and model kill-at-stage recovery")
	deadline := flag.Duration("deadline", 10*time.Second, "detection deadline of the failure-recovery model")
	flag.Parse()
	cm := simnet.Default()

	rs := make([]int, 0, *k-1)
	for i := 1; i < *k && i <= 10; i++ {
		rs = append(rs, i)
	}
	pts, err := simnet.SweepR(*k, rs, cm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Print(simnet.RenderSweep(fmt.Sprintf("Impact of r (K=%d, 12 GB, 100 Mbps)", *k), pts))
	fmt.Println()

	const maxR = 8 // storage-feasibility cap (paper footnote 6)
	bestR, bestS, err := simnet.OptimalR(*k, maxR, cm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Printf("Optimal redundancy at K=%d (r <= %d by storage): r=%d (speedup %.2fx)\n\n", *k, maxR, bestR, bestS)

	ks := []int{}
	for kk := *r + 1; kk <= 28; kk += 4 {
		ks = append(ks, kk)
	}
	ptsK, err := simnet.SweepK(*r, ks, cm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Print(simnet.RenderSweep(fmt.Sprintf("Impact of K (r=%d, 12 GB, 100 Mbps)", *r), ptsK))
	fmt.Println()

	pks := []int{}
	for kk := *r * 2; kk <= 64; kk *= 2 {
		pks = append(pks, kk)
	}
	ptsP, err := simnet.SweepPlacement(*r, pks, cm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Print(simnet.RenderPlacementSweep(
		fmt.Sprintf("Clique vs resolvable placement (r=%d, 12 GB, 100 Mbps)", *r), ptsP))
	fmt.Println()

	const skewRows = 1 << 16
	ptsS, err := simnet.SweepSkew(8, skewRows, 2017, 0, kv.SkewedDistributions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	fmt.Print(simnet.RenderSkew(
		fmt.Sprintf("Reducer imbalance: uniform vs sampled partitioning (K=8, %d rows)", int64(skewRows)), ptsS))

	if *stragglers > 1 {
		fmt.Println()
		rs := []int{}
		for i := 1; i < *k && i <= 8; i++ {
			rs = append(rs, i)
		}
		sp, err := simnet.SweepStragglers(*k, rs, *stragglers, cm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Print(simnet.RenderStragglers(
			fmt.Sprintf("One straggler, %gx slower shuffle egress (K=%d, 12 GB, 100 Mbps)", *stragglers, *k), sp))
		fmt.Println()
		fp, err := simnet.SweepFailures(*k, *r, *deadline, cm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		fmt.Print(simnet.RenderFailures(
			fmt.Sprintf("Kill-at-stage recovery, %v detection deadline (K=%d, r=%d)", *deadline, *k, *r), fp))
	}
}
