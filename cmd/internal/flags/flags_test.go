package flags

import (
	"flag"
	"testing"
	"time"

	"codedterasort/internal/cluster"
)

// TestRegisterAndSpec: the canonical flag names parse into a valid spec
// for both engines, with the coded-only and terasort-only knobs dropped on
// the other algorithm.
func TestRegisterAndSpec(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var j Job
	j.RegisterCommon(fs, 8)
	j.RegisterCoded(fs, 3)
	j.RegisterInDir(fs)
	err := fs.Parse([]string{
		"-k", "6", "-r", "2", "-rows", "1234", "-seed", "99", "-skewed",
		"-tree", "-rate", "100", "-permsg", "5ms", "-chunk", "500",
		"-window", "8", "-membudget", "65536", "-spilldir", "/tmp/x",
		"-indir", "/tmp/in", "-procs", "4",
	})
	if err != nil {
		t.Fatal(err)
	}

	coded := j.Spec(cluster.AlgCoded)
	if coded.K != 6 || coded.R != 2 || coded.Rows != 1234 || coded.Seed != 99 ||
		!coded.Skewed || !coded.TreeMulticast || coded.RateMbps != 100 ||
		coded.PerMessage != 5*time.Millisecond || coded.ChunkRows != 500 ||
		coded.Window != 8 || coded.MemBudget != 65536 || coded.SpillDir != "/tmp/x" ||
		coded.Parallelism != 4 {
		t.Fatalf("coded spec: %+v", coded)
	}
	if coded.InputDir != "" {
		t.Fatalf("coded spec kept the terasort-only input dir: %+v", coded)
	}
	if err := coded.Validate(); err != nil {
		t.Fatal(err)
	}

	tera := j.Spec(cluster.AlgTeraSort)
	if tera.R != 0 || tera.TreeMulticast {
		t.Fatalf("terasort spec kept coded-only knobs: %+v", tera)
	}
	if tera.InputDir != "/tmp/in" {
		t.Fatalf("terasort spec lost the input dir: %+v", tera)
	}
	if err := tera.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDefaults: defaults match the historical per-binary flag defaults,
// and the parameterized K default lands.
func TestDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var j Job
	j.RegisterCommon(fs, 4)
	j.RegisterCoded(fs, 2)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if j.K != 4 || j.R != 2 || j.Rows != 100000 || j.Seed != 2017 {
		t.Fatalf("defaults: %+v", j)
	}
	if j.Chunk != 0 || j.Window != 0 || j.MemBudget != 0 || j.Procs != 0 {
		t.Fatalf("policy defaults must be zero (mono schedule): %+v", j)
	}
}

// TestProcsOnly: the worker's reduced surface registers only -procs.
func TestProcsOnly(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var j Job
	j.RegisterProcs(fs, "custom usage")
	if err := fs.Parse([]string{"-procs", "3"}); err != nil {
		t.Fatal(err)
	}
	if j.Procs != 3 {
		t.Fatalf("procs: %d", j.Procs)
	}
	n := 0
	fs.VisitAll(func(*flag.Flag) { n++ })
	if n != 1 {
		t.Fatalf("%d flags registered, want 1", n)
	}
}
