// Package flags centralizes the job-spec flag surface shared by the run
// binaries (terasort, codedterasort, coordinator, worker). Every binary
// used to hand-roll the same dozen flag definitions; here each flag has
// one canonical name, default and usage string, and a Job folds directly
// into a cluster.Spec.
package flags

import (
	"flag"
	"time"

	"codedterasort/internal/cluster"
)

// ProcsUsage is the canonical -procs usage string; binaries with a
// different procs semantic (the worker's per-node override) pass their own.
const ProcsUsage = "per-worker compute goroutines for the map/sort/code hot paths (0 = all cores, 1 = sequential); output is identical at any setting"

// Job collects the job-spec flags. Zero value + Register* calls bind it to
// a FlagSet; after Parse, Spec() yields the cluster job spec.
type Job struct {
	K             int
	R             int
	Strategy      string
	Rows          int64
	Seed          uint64
	Skewed        bool
	Dist          string
	Partition     string
	Samples       int
	Tree          bool
	Rate          float64
	PerMsg        time.Duration
	Chunk         int
	Window        int
	MemBudget     int64
	SpillDir      string
	InDir         string
	Procs         int
	Stragglers    float64
	StragglerRank int
	Deadline      time.Duration
	MaxAttempts   int
}

// RegisterCommon binds the flags every job shape shares: cluster size,
// input description, traffic shaping, and the engine runtime's policy
// knobs (chunk streaming, memory budget, parallelism). defaultK
// parameterizes the one default the binaries disagree on.
func (j *Job) RegisterCommon(fs *flag.FlagSet, defaultK int) {
	fs.IntVar(&j.K, "k", defaultK, "number of worker nodes")
	fs.Int64Var(&j.Rows, "rows", 100000, "input size in 100-byte records")
	fs.Uint64Var(&j.Seed, "seed", 2017, "input generator seed")
	fs.BoolVar(&j.Skewed, "skewed", false, "skewed input keys (legacy; -dist skewed)")
	fs.StringVar(&j.Dist, "dist", "",
		"input key distribution: uniform (default), skewed, zipf, sorted, nearsorted, dupheavy, varprefix")
	fs.StringVar(&j.Partition, "partition", "",
		"partitioning policy: uniform (default: equal key-range splits) or sample (splitters from a deterministic input sample — balanced reducers on skewed keys)")
	fs.IntVar(&j.Samples, "samples", 0,
		"global sample size for -partition=sample (0 = default)")
	fs.Float64Var(&j.Rate, "rate", 0, "per-node egress cap in Mbps (0 = unlimited)")
	fs.DurationVar(&j.PerMsg, "permsg", 0, "fixed per-message overhead")
	fs.IntVar(&j.Chunk, "chunk", 0, "streaming pipelined shuffle chunk size in records (0 = monolithic stages)")
	fs.IntVar(&j.Window, "window", 0, "in-flight chunk window per stream (0 = engine default)")
	fs.Int64Var(&j.MemBudget, "membudget", 0, "per-worker memory budget in bytes: spill sorted runs to disk and merge-stream the reduce (0 = fully in-memory)")
	fs.StringVar(&j.SpillDir, "spilldir", "", "parent directory for spill files (default system temp)")
	j.RegisterProcs(fs, ProcsUsage)
}

// RegisterCoded binds the CodedTeraSort-only flags: the redundancy
// parameter, the placement/coding strategy and the multicast strategy.
func (j *Job) RegisterCoded(fs *flag.FlagSet, defaultR int) {
	fs.IntVar(&j.R, "r", defaultR, "redundancy parameter (each file mapped on r nodes)")
	fs.StringVar(&j.Strategy, "strategy", "",
		"placement/coding strategy: clique (the paper's scheme, default) or resolvable (q^(r-1) subfiles and far fewer groups at large K; needs K divisible by r)")
	fs.BoolVar(&j.Tree, "tree", false, "binomial-tree multicast instead of serial")
}

// RegisterFaults binds the straggler/failure-resilience flags: the
// -stragglers egress slow-down injection and the detection/recovery knobs
// of the supervised runtime.
func (j *Job) RegisterFaults(fs *flag.FlagSet) {
	fs.Float64Var(&j.Stragglers, "stragglers", 0,
		"inject one straggler: slow the straggler rank's egress by this factor (0 or 1 = healthy; effective with -rate or -permsg)")
	fs.IntVar(&j.StragglerRank, "straggler-rank", 0, "which rank the -stragglers injection slows")
	fs.DurationVar(&j.Deadline, "deadline", 0,
		"stage deadline arming straggler detection: a rank this far behind its fastest peer on a stage is declared faulty (0 = detection off)")
	fs.IntVar(&j.MaxAttempts, "max-attempts", 0,
		"recovery attempt cap for supervised local runs (0 = default: 3 with -deadline, else 1)")
}

// RegisterInDir binds the file-backed input flag (TeraSort only).
func (j *Job) RegisterInDir(fs *flag.FlagSet) {
	fs.StringVar(&j.InDir, "indir", "", "read input from the part files teragen -disk wrote here instead of generating it")
}

// RegisterProcs binds only the -procs flag — the worker binary's flag
// surface, where procs overrides the coordinator-distributed setting.
func (j *Job) RegisterProcs(fs *flag.FlagSet, usage string) {
	fs.IntVar(&j.Procs, "procs", 0, usage)
}

// Spec folds the parsed flags into a job spec for the given algorithm.
// TeraSort specs drop the coded-only knobs so identical flag sets produce
// valid specs for either engine (the -compare path).
func (j *Job) Spec(alg cluster.Algorithm) cluster.Spec {
	spec := cluster.Spec{
		Algorithm: alg,
		K:         j.K, R: j.R, Placement: j.Strategy,
		Rows: j.Rows, Seed: j.Seed, Skewed: j.Skewed,
		DistName: j.Dist, Partitioning: j.Partition, SampleSize: j.Samples,
		TreeMulticast: j.Tree, RateMbps: j.Rate, PerMessage: j.PerMsg,
		ChunkRows: j.Chunk, Window: j.Window,
		MemBudget: j.MemBudget, SpillDir: j.SpillDir, InputDir: j.InDir,
		Parallelism:   j.Procs,
		StageDeadline: j.Deadline, MaxAttempts: j.MaxAttempts,
	}
	if j.Stragglers > 1 {
		spec.StragglerFactor = j.Stragglers
		spec.StragglerRank = j.StragglerRank
	}
	if alg == cluster.AlgTeraSort {
		spec.R = 0
		spec.Placement = ""
		spec.TreeMulticast = false
	} else {
		spec.InputDir = ""
	}
	return spec
}
