// Command codedterasort runs CodedTeraSort (paper Section IV) on an
// in-process cluster, prints the six-stage breakdown, and when -compare is
// set also runs the TeraSort baseline on the same input and reports the
// speedup and communication-load gain.
//
// Usage:
//
//	codedterasort -k 8 -r 3 -rows 1000000
//	codedterasort -k 6 -r 2 -rows 600000 -rate 200 -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"codedterasort/cmd/internal/flags"
	"codedterasort/internal/cluster"
	"codedterasort/internal/placement"
	"codedterasort/internal/stats"
)

func main() {
	var j flags.Job
	j.RegisterCommon(flag.CommandLine, 8)
	j.RegisterCoded(flag.CommandLine, 3)
	j.RegisterFaults(flag.CommandLine)
	compare := flag.Bool("compare", false, "also run the TeraSort baseline and report speedup")
	flag.Parse()

	spec := j.Spec(cluster.AlgCoded)
	start := time.Now()
	job, err := cluster.RunLocal(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codedterasort:", err)
		os.Exit(1)
	}
	fmt.Printf("CodedTeraSort: K=%d, r=%d, %s placement, %d records (%.1f MB), validated=%v, wall time %.2fs\n",
		j.K, j.R, spec.PlacementKind(), j.Rows, float64(j.Rows)*100/1e6, job.Validated, time.Since(start).Seconds())
	if job.Attempts > 1 {
		fmt.Printf("recovery: %d attempts, recovered from %v\n", job.Attempts, job.Recovered)
	}

	rows := []stats.Row{}
	if *compare {
		baseJob, err := cluster.RunLocal(j.Spec(cluster.AlgTeraSort))
		if err != nil {
			fmt.Fprintln(os.Stderr, "codedterasort: baseline:", err)
			os.Exit(1)
		}
		rows = append(rows, stats.Row{Label: "TeraSort", Times: baseJob.Times})
		rows = append(rows, stats.Row{
			Label:   fmt.Sprintf("CodedTeraSort: r=%d", j.R),
			Times:   job.Times,
			Speedup: baseJob.Times.Total().Seconds() / job.Times.Total().Seconds(),
		})
		fmt.Print(stats.RenderTable("", rows))
		fmt.Printf("communication load: TeraSort %.2f MB vs Coded %.2f MB (gain %.2fx)\n",
			float64(baseJob.ShuffleLoadBytes)/1e6, float64(job.ShuffleLoadBytes)/1e6,
			float64(baseJob.ShuffleLoadBytes)/float64(job.ShuffleLoadBytes))
		return
	}
	rows = append(rows, stats.Row{Label: fmt.Sprintf("CodedTeraSort: r=%d", j.R), Times: job.Times})
	fmt.Print(stats.RenderTable("", rows))
	groups := int64(0)
	if strat, err := placement.New(spec.PlacementKind(), j.K, j.R); err == nil {
		groups = strat.NumGroups()
	}
	fmt.Printf("multicast payload: %.2f MB over %d groups (%s placement)\n",
		float64(job.ShuffleLoadBytes)/1e6, groups, spec.PlacementKind())
	if job.ChunksShuffled > 0 {
		fmt.Printf("pipelined shuffle: %d chunk packets\n", job.ChunksShuffled)
	}
	if j.MemBudget > 0 {
		fmt.Printf("external sort: %d runs spilled under a %.1f MB/worker budget\n",
			job.SpilledRuns, float64(j.MemBudget)/1e6)
	}
}
