// Command codedterasort runs CodedTeraSort (paper Section IV) on an
// in-process cluster, prints the six-stage breakdown, and when -compare is
// set also runs the TeraSort baseline on the same input and reports the
// speedup and communication-load gain.
//
// Usage:
//
//	codedterasort -k 8 -r 3 -rows 1000000
//	codedterasort -k 6 -r 2 -rows 600000 -rate 200 -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"codedterasort/internal/cluster"
	"codedterasort/internal/combin"
	"codedterasort/internal/stats"
)

func main() {
	k := flag.Int("k", 8, "number of worker nodes")
	r := flag.Int("r", 3, "redundancy parameter (each file mapped on r nodes)")
	rows := flag.Int64("rows", 100000, "input size in 100-byte records")
	seed := flag.Uint64("seed", 2017, "input generator seed")
	skewed := flag.Bool("skewed", false, "skewed input keys")
	tree := flag.Bool("tree", false, "binomial-tree multicast instead of serial")
	rate := flag.Float64("rate", 0, "per-node egress cap in Mbps (0 = unlimited)")
	perMsg := flag.Duration("permsg", 0, "fixed per-message overhead")
	compare := flag.Bool("compare", false, "also run the TeraSort baseline and report speedup")
	chunk := flag.Int("chunk", 0, "streaming pipelined shuffle chunk size in records (0 = monolithic stages)")
	window := flag.Int("window", 0, "in-flight chunk window per stream (0 = engine default)")
	memBudget := flag.Int64("membudget", 0, "per-worker memory budget in bytes: spill sorted runs to disk and merge-stream the reduce (0 = fully in-memory)")
	spillDir := flag.String("spilldir", "", "parent directory for spill files (default system temp)")
	procs := flag.Int("procs", 0, "per-worker compute goroutines for map/sort/code hot paths (0 = all cores, 1 = sequential); output is identical at any setting")
	flag.Parse()

	spec := cluster.Spec{
		Algorithm: cluster.AlgCoded,
		K:         *k, R: *r, Rows: *rows, Seed: *seed, Skewed: *skewed,
		TreeMulticast: *tree, RateMbps: *rate, PerMessage: *perMsg,
		ChunkRows: *chunk, Window: *window,
		MemBudget: *memBudget, SpillDir: *spillDir,
		Parallelism: *procs,
	}
	start := time.Now()
	job, err := cluster.RunLocal(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "codedterasort:", err)
		os.Exit(1)
	}
	fmt.Printf("CodedTeraSort: K=%d, r=%d, %d records (%.1f MB), validated=%v, wall time %.2fs\n",
		*k, *r, *rows, float64(*rows)*100/1e6, job.Validated, time.Since(start).Seconds())

	rows_ := []stats.Row{}
	if *compare {
		base := spec
		base.Algorithm = cluster.AlgTeraSort
		base.R = 0
		baseJob, err := cluster.RunLocal(base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "codedterasort: baseline:", err)
			os.Exit(1)
		}
		rows_ = append(rows_, stats.Row{Label: "TeraSort", Times: baseJob.Times})
		rows_ = append(rows_, stats.Row{
			Label:   fmt.Sprintf("CodedTeraSort: r=%d", *r),
			Times:   job.Times,
			Speedup: baseJob.Times.Total().Seconds() / job.Times.Total().Seconds(),
		})
		fmt.Print(stats.RenderTable("", rows_))
		fmt.Printf("communication load: TeraSort %.2f MB vs Coded %.2f MB (gain %.2fx)\n",
			float64(baseJob.ShuffleLoadBytes)/1e6, float64(job.ShuffleLoadBytes)/1e6,
			float64(baseJob.ShuffleLoadBytes)/float64(job.ShuffleLoadBytes))
		return
	}
	rows_ = append(rows_, stats.Row{Label: fmt.Sprintf("CodedTeraSort: r=%d", *r), Times: job.Times})
	fmt.Print(stats.RenderTable("", rows_))
	fmt.Printf("multicast payload: %.2f MB over %d groups\n",
		float64(job.ShuffleLoadBytes)/1e6, combin.Binomial(*k, *r+1))
	if job.ChunksShuffled > 0 {
		fmt.Printf("pipelined shuffle: %d chunk packets\n", job.ChunksShuffled)
	}
	if *memBudget > 0 {
		fmt.Printf("external sort: %d runs spilled under a %.1f MB/worker budget\n",
			job.SpilledRuns, float64(*memBudget)/1e6)
	}
}
