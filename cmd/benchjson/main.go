// Command benchjson runs the pipeline benchmark workloads — the schedule
// progression of both engines (serial, chunked-streaming, out-of-core) —
// and writes a machine-readable JSON summary (ns/op, bytes shuffled, peak
// live heap, spilled runs) so the performance trajectory is tracked across
// PRs instead of living only in scrollback.
//
// Usage:
//
//	benchjson -out BENCH_pipeline.json
//	benchjson -rows 500000 -benchtime 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"codedterasort/internal/cluster"
	"codedterasort/internal/kv"
)

// benchResult is one workload's measurement.
type benchResult struct {
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	MBPerSec       float64 `json:"mb_per_sec"`
	Rows           int64   `json:"rows"`
	BytesShuffled  int64   `json:"bytes_shuffled"`
	ChunksShuffled int64   `json:"chunks_shuffled,omitempty"`
	SpilledRuns    int64   `json:"spilled_runs,omitempty"`
	PeakHeapBytes  uint64  `json:"peak_heap_bytes"`
}

// benchFile is the BENCH_pipeline.json document.
type benchFile struct {
	GoVersion string        `json:"go_version"`
	Rows      int64         `json:"rows"`
	Results   []benchResult `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output JSON path")
	rows := flag.Int64("rows", 200000, "input size in records per workload")
	benchtime := flag.Duration("benchtime", time.Second, "minimum measuring time per workload")
	flag.Parse()

	if err := run(*out, *rows, *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// workloads returns the tracked pipeline configurations: each engine under
// the paper's serial schedule, the chunked streaming pipeline, and the
// out-of-core external sort (budget sized to force spilling at any -rows).
func workloads(rows int64, spillDir string) []struct {
	name string
	spec cluster.Spec
} {
	budget := rows * kv.RecordSize / 16
	if budget < 1<<16 {
		budget = 1 << 16
	}
	return []struct {
		name string
		spec cluster.Spec
	}{
		{"terasort/serial", cluster.Spec{
			Algorithm: cluster.AlgTeraSort, K: 4, Rows: rows, Seed: 11}},
		{"terasort/chunked", cluster.Spec{
			Algorithm: cluster.AlgTeraSort, K: 4, Rows: rows, Seed: 11,
			ParallelShuffle: true, ChunkRows: 2000, Window: 8}},
		{"terasort/extsort", cluster.Spec{
			Algorithm: cluster.AlgTeraSort, K: 4, Rows: rows, Seed: 11,
			ParallelShuffle: true, MemBudget: budget, SpillDir: spillDir}},
		{"coded/serial", cluster.Spec{
			Algorithm: cluster.AlgCoded, K: 4, R: 2, Rows: rows, Seed: 11}},
		{"coded/chunked", cluster.Spec{
			Algorithm: cluster.AlgCoded, K: 4, R: 2, Rows: rows, Seed: 11,
			ParallelShuffle: true, ChunkRows: 800, Window: 8}},
		{"coded/extsort", cluster.Spec{
			Algorithm: cluster.AlgCoded, K: 4, R: 2, Rows: rows, Seed: 11,
			ParallelShuffle: true, MemBudget: budget, SpillDir: spillDir}},
	}
}

func run(out string, rows int64, benchtime time.Duration) error {
	spillDir, err := os.MkdirTemp("", "benchjson-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(spillDir)

	doc := benchFile{GoVersion: runtime.Version(), Rows: rows}
	for _, w := range workloads(rows, spillDir) {
		res, err := measure(w.name, w.spec, benchtime)
		if err != nil {
			return fmt.Errorf("%s: %w", w.name, err)
		}
		doc.Results = append(doc.Results, res)
		fmt.Printf("%-20s %12.0f ns/op  %8.1f MB/s  peak heap %6.1f MB\n",
			w.name, res.NsPerOp, res.MBPerSec, float64(res.PeakHeapBytes)/1e6)
	}
	p, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(p, '\n'), 0o644)
}

// measure runs one workload repeatedly for at least benchtime, sampling
// the peak live heap throughout.
func measure(name string, spec cluster.Spec, benchtime time.Duration) (benchResult, error) {
	runtime.GC()
	stop := make(chan struct{})
	peakCh := make(chan uint64)
	go func() {
		var peak uint64
		var m runtime.MemStats
		for {
			select {
			case <-stop:
				peakCh <- peak
				return
			default:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	var job *cluster.JobReport
	var err error
	iters := 0
	start := time.Now()
	for elapsed := time.Duration(0); iters == 0 || elapsed < benchtime; elapsed = time.Since(start) {
		job, err = cluster.RunLocal(spec)
		if err != nil {
			close(stop)
			<-peakCh
			return benchResult{}, err
		}
		iters++
	}
	total := time.Since(start)
	close(stop)
	peak := <-peakCh

	nsPerOp := float64(total.Nanoseconds()) / float64(iters)
	return benchResult{
		Name:           name,
		Iterations:     iters,
		NsPerOp:        nsPerOp,
		MBPerSec:       float64(spec.Rows*kv.RecordSize) / 1e6 / (nsPerOp / 1e9),
		Rows:           spec.Rows,
		BytesShuffled:  job.ShuffleLoadBytes,
		ChunksShuffled: job.ChunksShuffled,
		SpilledRuns:    job.SpilledRuns,
		PeakHeapBytes:  peak,
	}, nil
}
