// Command benchjson runs the pipeline benchmark workloads — the schedule
// progression of both engines (serial, chunked-streaming, out-of-core) —
// and writes a machine-readable JSON summary (ns/op, bytes shuffled, peak
// live heap, spilled runs) so the performance trajectory is tracked across
// PRs instead of living only in scrollback.
//
// Usage:
//
//	benchjson -out BENCH_pipeline.json
//	benchjson -rows 500000 -benchtime 2s
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"codedterasort/internal/cluster"
	"codedterasort/internal/codec"
	"codedterasort/internal/coded"
	"codedterasort/internal/combin"
	"codedterasort/internal/extsort"
	"codedterasort/internal/kv"
	"codedterasort/internal/mapreduce"
	"codedterasort/internal/parallel"
	"codedterasort/internal/partition"
	"codedterasort/internal/placement"
	"codedterasort/internal/simnet"
)

// benchResult is one workload's measurement.
type benchResult struct {
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	MBPerSec       float64 `json:"mb_per_sec"`
	Rows           int64   `json:"rows"`
	BytesShuffled  int64   `json:"bytes_shuffled"`
	ChunksShuffled int64   `json:"chunks_shuffled,omitempty"`
	SpilledRuns    int64   `json:"spilled_runs,omitempty"`
	// Spilled bytes before framing/truncation vs framed on disk: the gap is
	// the compact spill format's saving at the job level.
	SpilledRawBytes  int64  `json:"spilled_raw_bytes,omitempty"`
	SpilledDiskBytes int64  `json:"spilled_disk_bytes,omitempty"`
	PeakHeapBytes    uint64 `json:"peak_heap_bytes"`
}

// microResult is one worker-kernel measurement: a compute hot path (sort,
// scatter, generate, chunk encode/decode, XOR) at a fixed goroutine count.
type microResult struct {
	Name     string  `json:"name"`
	Procs    int     `json:"procs,omitempty"`
	NsPerOp  float64 `json:"ns_per_op"`
	MBPerSec float64 `json:"mb_per_sec"`
	// Speedup is the ratio against the kernel's baseline entry: the p=1
	// run for parallel kernels, the byte-loop reference for xor/word.
	Speedup float64 `json:"speedup,omitempty"`
}

// extsortResult is one external-sort microbenchmark: a budget-bounded
// Sorter spills runs over rows generated records, then the drain (the
// loser-tree merge of every run) is timed on its own. The comparison
// counters record how the merge decided its matches — by cached
// offset-value codes alone, or by falling through to key bytes — and the
// raw-vs-disk spill bytes record what the compact run format saved.
type extsortResult struct {
	Name         string  `json:"name"`
	Rows         int64   `json:"rows"`
	SpilledRuns  int64   `json:"spilled_runs"`
	MergeNsPerOp float64 `json:"merge_ns_per_op"`
	MBPerSec     float64 `json:"mb_per_sec"`
	// ComparesPerNext is total merge comparisons (OVC-decided + full)
	// divided by records emitted; OVCDecidedFraction is the share the codes
	// resolved without touching key bytes.
	ComparesPerNext    float64 `json:"compares_per_next"`
	OVCDecidedFraction float64 `json:"ovc_decided_fraction"`
	SpilledRawBytes    int64   `json:"spilled_raw_bytes"`
	SpilledDiskBytes   int64   `json:"spilled_disk_bytes"`
	// SpillSavings is 1 - disk/raw: the fraction of record bytes the
	// prefix-truncated frames kept off disk.
	SpillSavings float64 `json:"spill_savings"`
}

// hostInfo records the machine the numbers came from, so
// BENCH_pipeline.json files from 1-CPU CI containers are distinguishable
// from real multicore runs (a 1-CPU host records parallel speedups of ~1x
// by construction).
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
}

// currentHost describes the running machine.
func currentHost() hostInfo {
	return hostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
}

// stragglerResult is one engine's completion time with and without an
// injected straggler (one rank's egress slowed by Factor under rate
// shaping) — the live counterpart of the paper-scale simnet straggler
// tables. Coding moves ~r times fewer shuffle bytes, so the same slow
// NIC costs the coded engine less absolute time: DeltaNs(coded) <
// DeltaNs(terasort) is the coded-resilience claim this section records.
type stragglerResult struct {
	Name        string  `json:"name"`
	Factor      float64 `json:"factor"`
	HealthyNs   float64 `json:"healthy_ns_per_op"`
	StraggledNs float64 `json:"straggled_ns_per_op"`
	DeltaNs     float64 `json:"delta_ns"`
	Ratio       float64 `json:"ratio"`
}

// recoveryResult is one engine's completion time for a job that loses a
// worker mid-Map and recovers by supervised re-execution (attempt-scoped
// respawn), versus its healthy time.
type recoveryResult struct {
	Name        string  `json:"name"`
	Attempts    int     `json:"attempts"`
	HealthyNs   float64 `json:"healthy_ns_per_op"`
	RecoveredNs float64 `json:"recovered_ns_per_op"`
}

// mapreduceResult is one MapReduce kernel's communication-load
// measurement: the bytes its intermediate data costs to shuffle uncoded
// versus coded at the same (K, R, rows). Loads are deterministic functions
// of the job (not timings), so one run per engine suffices; the section
// tracks the per-kernel gain the framework inherits from the coded
// shuffle.
type mapreduceResult struct {
	Kernel       string  `json:"kernel"`
	K            int     `json:"k"`
	R            int     `json:"r"`
	Rows         int64   `json:"rows"`
	ReducedRows  int64   `json:"reduced_rows"`
	UncodedBytes int64   `json:"uncoded_shuffle_bytes"`
	CodedBytes   int64   `json:"coded_shuffle_bytes"`
	Gain         float64 `json:"gain"`
}

// placementResult is one K of the clique-vs-resolvable placement
// comparison: the structural counts (multicast groups, subfiles) of both
// strategies at the same (K, r) plus the simulated full-scale shuffle
// bytes and wall time. All values are deterministic functions of (K, r)
// and the cost model — no timing noise — so the section doubles as a
// regression gate on the resolvable construction itself.
type placementResult struct {
	K                int     `json:"k"`
	R                int     `json:"r"`
	CliqueGroups     int64   `json:"clique_groups"`
	CliqueFiles      int     `json:"clique_files"`
	CliqueBytes      float64 `json:"clique_shuffle_bytes"`
	CliqueSec        float64 `json:"clique_total_sec"`
	ResolvableGroups int64   `json:"resolvable_groups"`
	ResolvableFiles  int     `json:"resolvable_files"`
	ResolvableBytes  float64 `json:"resolvable_shuffle_bytes"`
	ResolvableSec    float64 `json:"resolvable_total_sec"`
	// GroupGain is clique groups / resolvable groups, the CodeGen-scaling
	// win the resolvable design buys.
	GroupGain float64 `json:"group_gain"`
}

// partitionResult is one input distribution of the partitioning-policy
// comparison: a real K=8 TeraSort run per policy, with reducer load
// imbalance (max worker output rows over mean) under the uniform
// key-range partitioner vs splitters from the deterministic sampling
// round, plus what the round cost on the wire. Loads are deterministic
// functions of the spec, so one run per policy suffices; the compare gate
// requires sampled partitioning to keep the zipf input balanced where
// uniform cannot.
type partitionResult struct {
	Dist             string  `json:"dist"`
	K                int     `json:"k"`
	Rows             int64   `json:"rows"`
	UniformImbalance float64 `json:"uniform_imbalance"`
	SampledImbalance float64 `json:"sampled_imbalance"`
	SampleRoundBytes int64   `json:"sample_round_bytes"`
}

// benchFile is the BENCH_pipeline.json document.
type benchFile struct {
	Host    hostInfo      `json:"host"`
	Rows    int64         `json:"rows"`
	Results []benchResult `json:"results"`
	// Micro tracks the multicore worker kernels, so per-PR perf work on
	// the hot paths is visible without running a whole cluster.
	Micro []microResult `json:"micro"`
	// Straggler and Recovery track the fault-resilience trajectory: how
	// much a 4x egress straggler and a recovered mid-Map death cost each
	// engine.
	Straggler []stragglerResult `json:"straggler"`
	Recovery  []recoveryResult  `json:"recovery"`
	// Mapreduce tracks the per-kernel shuffle loads of the MapReduce
	// framework's built-in kernels, uncoded vs coded.
	Mapreduce []mapreduceResult `json:"mapreduce"`
	// Extsort tracks the external-sort merge path in isolation: merge
	// ns/op, comparisons per emitted record (with the offset-value-coding
	// share), and the compact spill format's raw-vs-disk byte gap.
	Extsort []extsortResult `json:"extsort"`
	// Placement tracks the clique-vs-resolvable structural comparison at
	// growing K; the compare gate requires resolvable to beat clique's
	// group count at the sweep's largest K.
	Placement []placementResult `json:"placement"`
	// Partition tracks reducer imbalance under uniform vs sampled
	// partitioning per skewed input distribution; the compare gate
	// requires sampled partitioning to hold the zipf input's imbalance
	// under the balance ceiling uniform partitioning blows through.
	Partition []partitionResult `json:"partition"`
}

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "output JSON path")
	rows := flag.Int64("rows", 200000, "input size in records per workload")
	benchtime := flag.Duration("benchtime", time.Second, "minimum measuring time per workload")
	compare := flag.String("compare", "",
		"baseline JSON to diff the fresh results against: ns/op ratios are advisory, but a workload shuffling or spilling (on disk) more than 2x its baseline's bytes fails the run, as does a document missing the extsort section")
	flag.Parse()

	if err := run(*out, *rows, *benchtime); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *compare != "" {
		fmt.Printf("\ncomparing %s against baseline %s\n", *out, *compare)
		regressions, err := compareFiles(*out, *compare, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: regression in %v\n", regressions)
			os.Exit(1)
		}
	}
}

// workloads returns the tracked pipeline configurations: each engine under
// the paper's serial schedule, the chunked streaming pipeline, and the
// out-of-core external sort (budget sized to force spilling at any -rows).
func workloads(rows int64, spillDir string) []struct {
	name string
	spec cluster.Spec
} {
	budget := rows * kv.RecordSize / 16
	if budget < 1<<16 {
		budget = 1 << 16
	}
	return []struct {
		name string
		spec cluster.Spec
	}{
		{"terasort/serial", cluster.Spec{
			Algorithm: cluster.AlgTeraSort, K: 4, Rows: rows, Seed: 11}},
		{"terasort/chunked", cluster.Spec{
			Algorithm: cluster.AlgTeraSort, K: 4, Rows: rows, Seed: 11,
			ParallelShuffle: true, ChunkRows: 2000, Window: 8}},
		{"terasort/extsort", cluster.Spec{
			Algorithm: cluster.AlgTeraSort, K: 4, Rows: rows, Seed: 11,
			ParallelShuffle: true, MemBudget: budget, SpillDir: spillDir}},
		{"coded/serial", cluster.Spec{
			Algorithm: cluster.AlgCoded, K: 4, R: 2, Rows: rows, Seed: 11}},
		{"coded/chunked", cluster.Spec{
			Algorithm: cluster.AlgCoded, K: 4, R: 2, Rows: rows, Seed: 11,
			ParallelShuffle: true, ChunkRows: 800, Window: 8}},
		{"coded/extsort", cluster.Spec{
			Algorithm: cluster.AlgCoded, K: 4, R: 2, Rows: rows, Seed: 11,
			ParallelShuffle: true, MemBudget: budget, SpillDir: spillDir}},
		// The multicore worker runtime: the chunked pipelines again with
		// each worker's compute paths on 4 goroutines.
		{"terasort/chunked/procs=4", cluster.Spec{
			Algorithm: cluster.AlgTeraSort, K: 4, Rows: rows, Seed: 11,
			ParallelShuffle: true, ChunkRows: 2000, Window: 8, Parallelism: 4}},
		{"coded/chunked/procs=4", cluster.Spec{
			Algorithm: cluster.AlgCoded, K: 4, R: 2, Rows: rows, Seed: 11,
			ParallelShuffle: true, ChunkRows: 800, Window: 8, Parallelism: 4}},
	}
}

// microKernels returns the tracked worker kernels, each measured at every
// procs value: the LSD and MSD radix sorts, the Map scatter, parallel
// generation, and the chunked Algorithm 1/2 encode/decode. prep (optional)
// runs untimed before each op to restore clobbered inputs.
func microKernels(rows int64) ([]struct {
	name  string
	bytes int64
	prep  func()
	op    func(procs int) error
}, error) {
	base := kv.NewGenerator(1, kv.DistUniform).Generate(0, rows)
	sortWork := base.Clone()
	restore := func() { copy(sortWork.Bytes(), base.Bytes()) }
	part := partition.NewUniform(8)

	// Chunked coded packets: the K=5, r=2 group of the paper's Fig 6/7
	// walkthrough, scaled to ~rows records across the plan.
	plan, err := placement.Redundant(5, 2, rows)
	if err != nil {
		return nil, err
	}
	p5 := partition.NewUniform(5)
	stores := make([]codec.IVMap, 2)
	for rank := range stores {
		stores[rank] = coded.MapFiles(plan, p5, kv.NewGenerator(6, kv.DistUniform), rank)
	}
	group := combin.NewSet(0, 1, 2)
	const chunkRows = 256
	count := codec.PacketChunkCount(stores[0], group, 0, chunkRows)
	pkts := make([][]byte, count)
	var codedBytes int64
	for c := 0; c < count; c++ {
		pkt, err := codec.EncodePacketChunk(stores[0], group, 0, chunkRows, c)
		if err != nil {
			return nil, err
		}
		pkts[c] = pkt
		codedBytes += int64(len(pkt))
	}

	return []struct {
		name  string
		bytes int64
		prep  func()
		op    func(procs int) error
	}{
		{"sort_radix_lsd", int64(base.Size()), restore, func(p int) error { sortWork.SortRadixParallel(p); return nil }},
		{"sort_radix_msd", int64(base.Size()), restore, func(p int) error { sortWork.SortRadixMSD(p); return nil }},
		{"scatter", int64(base.Size()), nil, func(p int) error { partition.SplitParallel(part, base, p); return nil }},
		{"generate", int64(base.Size()), nil, func(p int) error {
			kv.NewGenerator(1, kv.DistUniform).GenerateParallel(0, rows, p)
			return nil
		}},
		{"chunk_encode", codedBytes, nil, func(p int) error {
			return parallel.Do(p, count, func(c int) error {
				pkt, err := codec.EncodePacketChunk(stores[0], group, 0, chunkRows, c)
				codec.Recycle(pkt)
				return err
			})
		}},
		{"chunk_decode", codedBytes, nil, func(p int) error {
			return parallel.Do(p, count, func(c int) error {
				_, err := codec.DecodePacketChunk(stores[1], group, 1, 0, chunkRows, c, pkts[c])
				return err
			})
		}},
	}, nil
}

// measureMicro times op (with prep untimed between iterations) for at
// least benchtime and returns the kernel measurement. A failing op aborts
// the run rather than recording a bogus baseline.
func measureMicro(name string, procs int, bytes int64, prep func(), op func(int) error, benchtime time.Duration) (microResult, error) {
	var total time.Duration
	iters := 0
	for total < benchtime || iters == 0 {
		if prep != nil {
			prep()
		}
		t0 := time.Now()
		err := op(procs)
		total += time.Since(t0)
		if err != nil {
			return microResult{}, fmt.Errorf("micro %s p=%d: %w", name, procs, err)
		}
		iters++
	}
	nsPerOp := float64(total.Nanoseconds()) / float64(iters)
	return microResult{
		Name:     name,
		Procs:    procs,
		NsPerOp:  nsPerOp,
		MBPerSec: float64(bytes) / 1e6 / (nsPerOp / 1e9),
	}, nil
}

// runMicro measures every kernel at p=1, p=4 and p=NumCPU (deduplicated)
// plus the word-vs-byte XOR pair, filling Speedup against each kernel's
// baseline entry.
func runMicro(rows int64, benchtime time.Duration) ([]microResult, error) {
	kernels, err := microKernels(rows)
	if err != nil {
		return nil, err
	}
	procsSet := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		procsSet = append(procsSet, n)
	}
	var out []microResult
	for _, k := range kernels {
		baseline := 0.0
		for _, procs := range procsSet {
			res, err := measureMicro(k.name, procs, k.bytes, k.prep, k.op, benchtime)
			if err != nil {
				return nil, err
			}
			if procs == 1 {
				baseline = res.NsPerOp
			} else if baseline > 0 {
				res.Speedup = baseline / res.NsPerOp
			}
			out = append(out, res)
		}
	}
	// XOR: the word-wise kernel against the byte-loop reference.
	const xorLen = 1 << 16
	dst, src := make([]byte, xorLen), make([]byte, xorLen)
	for i := range src {
		src[i] = byte(i)
	}
	byteRef, err := measureMicro("xor/byte", 0, xorLen, nil, func(int) error {
		for i := range dst {
			dst[i] ^= src[i]
		}
		return nil
	}, benchtime)
	if err != nil {
		return nil, err
	}
	word, err := measureMicro("xor/word", 0, xorLen, nil, func(int) error {
		codec.XORInto(dst, src)
		return nil
	}, benchtime)
	if err != nil {
		return nil, err
	}
	word.Speedup = byteRef.NsPerOp / word.NsPerOp
	return append(out, byteRef, word), nil
}

// stragglerSpecs returns the engine pair of the straggler benchmark:
// rate-shaped serial-schedule jobs, so one slowed rank stretches the
// shuffle by its egress share exactly as in the paper's schedules.
func stragglerSpecs(rows int64) map[string]cluster.Spec {
	return map[string]cluster.Spec{
		"terasort": {Algorithm: cluster.AlgTeraSort, K: 4, Rows: rows, Seed: 11, RateMbps: 800},
		"coded":    {Algorithm: cluster.AlgCoded, K: 4, R: 2, Rows: rows, Seed: 11, RateMbps: 800},
	}
}

// stragglerFactor is the injected egress slow-down (the acceptance
// scenario's 4x straggler).
const stragglerFactor = 4

// runStraggler measures both engines healthy and with one rank's egress
// slowed by stragglerFactor.
func runStraggler(rows int64, benchtime time.Duration) ([]stragglerResult, error) {
	var out []stragglerResult
	for _, name := range []string{"terasort", "coded"} {
		spec := stragglerSpecs(rows)[name]
		healthy, _, err := measure(name+"/healthy", spec, benchtime)
		if err != nil {
			return nil, err
		}
		spec.StragglerFactor = stragglerFactor
		spec.StragglerRank = 1
		straggled, _, err := measure(name+"/straggled", spec, benchtime)
		if err != nil {
			return nil, err
		}
		out = append(out, stragglerResult{
			Name:        name,
			Factor:      stragglerFactor,
			HealthyNs:   healthy.NsPerOp,
			StraggledNs: straggled.NsPerOp,
			DeltaNs:     straggled.NsPerOp - healthy.NsPerOp,
			Ratio:       straggled.NsPerOp / healthy.NsPerOp,
		})
	}
	return out, nil
}

// runRecovery measures both engines recovering from a worker death
// injected mid-Map (supervised re-execution, two attempts).
func runRecovery(rows int64, benchtime time.Duration) ([]recoveryResult, error) {
	var out []recoveryResult
	for _, name := range []string{"terasort", "coded"} {
		spec := stragglerSpecs(rows)[name]
		spec.RateMbps = 0 // recovery cost, not wire time
		healthy, _, err := measure(name+"/healthy", spec, benchtime)
		if err != nil {
			return nil, err
		}
		spec.Faults = []cluster.FaultSpec{{Rank: 1, Stage: "Map", Kind: "kill"}}
		spec.StageDeadline = 30 * time.Second // crash detection is immediate; the deadline only backstops
		spec.MaxAttempts = 2
		recovered, job, err := measure(name+"/recovered", spec, benchtime)
		if err != nil {
			return nil, err
		}
		out = append(out, recoveryResult{
			Name:        name,
			Attempts:    job.Attempts,
			HealthyNs:   healthy.NsPerOp,
			RecoveredNs: recovered.NsPerOp,
		})
	}
	return out, nil
}

// runExtsort measures the external-sort merge path in isolation, once per
// key distribution: a Sorter under a budget of 1/16 of the input spills
// ~16 sorted runs; the drain — the offset-value-coded loser-tree merge of
// every run plus the in-memory tail — is what each timed op runs. Append
// and spill time is excluded (it is the radix sort, tracked by the micro
// section), so the number isolates merge-path work. Spill bytes and the
// comparison split are deterministic per spec; they come from the last
// iteration.
func runExtsort(rows int64, spillDir string, benchtime time.Duration) ([]extsortResult, error) {
	budget := rows * kv.RecordSize / 16
	if budget < 1<<16 {
		budget = 1 << 16
	}
	var out []extsortResult
	for _, c := range []struct {
		name      string
		dist      kv.Distribution
		dupDomain int64
	}{
		// Uniform random 10-byte keys are near-incompressible at these run
		// lengths (adjacent sorted keys share <1 prefix byte on average), so
		// this entry tracks the per-block v1 fallback holding disk bytes at
		// raw-plus-framing. The duplicate-heavy entry is where the
		// prefix-truncated frames pay.
		{"merge/uniform", kv.DistUniform, 0},
		{"merge/skewed", kv.DistSkewed, 0},
		{"merge/dupkeys", kv.DistUniform, 4096},
	} {
		input := kv.NewGenerator(11, c.dist).Generate(0, rows)
		if c.dupDomain > 0 {
			quantizeKeys(input, c.dupDomain)
		}
		// Append in sub-budget batches so the sorter spills ~16 runs (a
		// whole-input append would buffer then spill a single run, leaving
		// the merge nothing to do); this mirrors the engines, which feed the
		// sorter shuffle chunk by shuffle chunk.
		batch := 1000
		var last extsort.Output
		var total time.Duration
		iters := 0
		for total < benchtime || iters == 0 {
			s, err := extsort.NewSorter(spillDir, budget)
			if err != nil {
				return nil, err
			}
			for i := 0; i < input.Len(); i += batch {
				end := i + batch
				if end > input.Len() {
					end = input.Len()
				}
				if err := s.Append(input.Slice(i, end)); err != nil {
					s.Close()
					return nil, fmt.Errorf("extsort %s: %w", c.name, err)
				}
			}
			t0 := time.Now()
			last, err = extsort.DrainSorted(s, s.BlockRows(), func(kv.Records) error { return nil })
			total += time.Since(t0)
			s.Close()
			if err != nil {
				return nil, fmt.Errorf("extsort %s: %w", c.name, err)
			}
			iters++
		}
		nsPerOp := float64(total.Nanoseconds()) / float64(iters)
		compares := last.OVCDecided + last.FullCompares
		res := extsortResult{
			Name:             c.name,
			Rows:             rows,
			SpilledRuns:      last.SpilledRuns,
			MergeNsPerOp:     nsPerOp,
			MBPerSec:         float64(rows*kv.RecordSize) / 1e6 / (nsPerOp / 1e9),
			SpilledRawBytes:  last.SpilledRawBytes,
			SpilledDiskBytes: last.SpilledDiskBytes,
		}
		if last.Rows > 0 {
			res.ComparesPerNext = float64(compares) / float64(last.Rows)
		}
		if compares > 0 {
			res.OVCDecidedFraction = float64(last.OVCDecided) / float64(compares)
		}
		if last.SpilledRawBytes > 0 {
			res.SpillSavings = 1 - float64(last.SpilledDiskBytes)/float64(last.SpilledRawBytes)
		}
		out = append(out, res)
	}
	return out, nil
}

// quantizeKeys rewrites every key to one of domain distinct values (a
// deterministic function of the row index), modeling duplicate-heavy sort
// inputs: long stretches of equal and near-equal keys after sorting, where
// prefix truncation and the OVC tie path both get exercised.
func quantizeKeys(recs kv.Records, domain int64) {
	buf := recs.Bytes()
	for i := 0; i < recs.Len(); i++ {
		key := buf[i*kv.RecordSize : i*kv.RecordSize+kv.KeySize]
		key[0], key[1] = 0, 0
		binary.BigEndian.PutUint64(key[2:], uint64(int64(i)*2654435761%domain))
	}
}

// runMapReduce records every built-in kernel's shuffle load uncoded and
// coded at K=4, R=2 over a quarter of the pipeline row count (the text
// kernels expand each input record into several intermediate ones).
func runMapReduce(rows int64) ([]mapreduceResult, error) {
	const k, r = 4, 2
	mrRows := rows / 4
	if mrRows < 1000 {
		mrRows = 1000
	}
	var out []mapreduceResult
	for _, kern := range mapreduce.Kernels() {
		plainRep, err := mapreduce.RunLocal(kern.Job(k, 1, mrRows, 11), mapreduce.LocalOptions{})
		if err != nil {
			return nil, fmt.Errorf("mapreduce %s uncoded: %w", kern.Name, err)
		}
		codedRep, err := mapreduce.RunLocal(kern.Job(k, r, mrRows, 11), mapreduce.LocalOptions{})
		if err != nil {
			return nil, fmt.Errorf("mapreduce %s coded: %w", kern.Name, err)
		}
		out = append(out, mapreduceResult{
			Kernel: kern.Name, K: k, R: r, Rows: mrRows,
			ReducedRows:  codedRep.Rows,
			UncodedBytes: plainRep.ShuffleLoadBytes,
			CodedBytes:   codedRep.ShuffleLoadBytes,
			Gain:         float64(plainRep.ShuffleLoadBytes) / float64(codedRep.ShuffleLoadBytes),
		})
	}
	return out, nil
}

// runPlacement computes the clique-vs-resolvable comparison at r=2 over
// doubling K up to 64 via the paper-scale simulator. Everything here is
// deterministic — structural counts from the placement strategies, bytes
// and seconds from the cost model — so the section needs no benchtime.
func runPlacement() ([]placementResult, error) {
	pts, err := simnet.SweepPlacement(2, []int{4, 8, 16, 32, 64}, simnet.Default())
	if err != nil {
		return nil, err
	}
	out := make([]placementResult, 0, len(pts))
	for _, p := range pts {
		out = append(out, placementResult{
			K: p.K, R: p.R,
			CliqueGroups: p.CliqueGroups, CliqueFiles: p.CliqueFiles,
			CliqueBytes: p.CliqueGB * 1e9, CliqueSec: p.CliqueTotalSec,
			ResolvableGroups: p.ResolvableGroups, ResolvableFiles: p.ResolvableFiles,
			ResolvableBytes: p.ResolvableGB * 1e9, ResolvableSec: p.ResolvableTotalSec,
			GroupGain: float64(p.CliqueGroups) / float64(p.ResolvableGroups),
		})
	}
	return out, nil
}

// runPartition measures the partitioning-policy comparison: for each
// skewed distribution, one real K=8 TeraSort job per policy, imbalance
// computed from the workers' reported output rows. The sampled runs
// exercise the engines' full sampling round (gather, splitter selection,
// broadcast), so SampleRoundBytes is the measured wire cost, not a model.
func runPartition(rows int64) ([]partitionResult, error) {
	const k = 8
	pRows := rows / 4
	if pRows < 1<<14 {
		pRows = 1 << 14
	}
	var out []partitionResult
	for _, d := range kv.SkewedDistributions {
		spec := cluster.Spec{
			Algorithm: cluster.AlgTeraSort, K: k, Rows: pRows, Seed: 11,
			DistName: d.String(),
		}
		uni, err := cluster.RunLocal(spec)
		if err != nil {
			return nil, fmt.Errorf("partition %v uniform: %w", d, err)
		}
		spec.Partitioning = "sample"
		smp, err := cluster.RunLocal(spec)
		if err != nil {
			return nil, fmt.Errorf("partition %v sampled: %w", d, err)
		}
		out = append(out, partitionResult{
			Dist: d.String(), K: k, Rows: pRows,
			UniformImbalance: loadImbalance(uni),
			SampledImbalance: loadImbalance(smp),
			SampleRoundBytes: smp.SampleRoundBytes,
		})
	}
	return out, nil
}

// loadImbalance is max worker output rows over the mean.
func loadImbalance(job *cluster.JobReport) float64 {
	counts := make([]int, len(job.Workers))
	for i, w := range job.Workers {
		counts[i] = int(w.OutputRows)
	}
	return partition.Imbalance(counts)
}

func run(out string, rows int64, benchtime time.Duration) error {
	spillDir, err := os.MkdirTemp("", "benchjson-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(spillDir)

	doc := benchFile{Host: currentHost(), Rows: rows}
	for _, w := range workloads(rows, spillDir) {
		res, _, err := measure(w.name, w.spec, benchtime)
		if err != nil {
			return fmt.Errorf("%s: %w", w.name, err)
		}
		doc.Results = append(doc.Results, res)
		fmt.Printf("%-26s %12.0f ns/op  %8.1f MB/s  peak heap %6.1f MB\n",
			w.name, res.NsPerOp, res.MBPerSec, float64(res.PeakHeapBytes)/1e6)
	}
	micro, err := runMicro(rows, benchtime)
	if err != nil {
		return err
	}
	doc.Micro = micro
	for _, m := range micro {
		extra := ""
		if m.Speedup > 0 {
			extra = fmt.Sprintf("  speedup %.2fx", m.Speedup)
		}
		fmt.Printf("micro/%-20s p=%d %12.0f ns/op  %8.1f MB/s%s\n",
			m.Name, m.Procs, m.NsPerOp, m.MBPerSec, extra)
	}
	straggler, err := runStraggler(rows, benchtime)
	if err != nil {
		return err
	}
	doc.Straggler = straggler
	for _, s := range straggler {
		fmt.Printf("straggler/%-16s x%g %12.0f -> %12.0f ns/op  delta %12.0f ns (%.3fx)\n",
			s.Name, s.Factor, s.HealthyNs, s.StraggledNs, s.DeltaNs, s.Ratio)
	}
	recovery, err := runRecovery(rows, benchtime)
	if err != nil {
		return err
	}
	doc.Recovery = recovery
	for _, r := range recovery {
		fmt.Printf("recovery/%-17s %12.0f -> %12.0f ns/op (%d attempts, mid-Map death)\n",
			r.Name, r.HealthyNs, r.RecoveredNs, r.Attempts)
	}
	mr, err := runMapReduce(rows)
	if err != nil {
		return err
	}
	doc.Mapreduce = mr
	for _, m := range mr {
		fmt.Printf("mapreduce/%-16s %8.1f KB uncoded -> %8.1f KB coded (gain %.2fx)\n",
			m.Kernel, float64(m.UncodedBytes)/1e3, float64(m.CodedBytes)/1e3, m.Gain)
	}
	ext, err := runExtsort(rows, spillDir, benchtime)
	if err != nil {
		return err
	}
	doc.Extsort = ext
	for _, e := range ext {
		fmt.Printf("extsort/%-18s %12.0f ns/op  %.2f cmp/next (%.0f%% ovc)  spill %8.1f -> %8.1f KB (%.1f%% saved)\n",
			e.Name, e.MergeNsPerOp, e.ComparesPerNext, 100*e.OVCDecidedFraction,
			float64(e.SpilledRawBytes)/1e3, float64(e.SpilledDiskBytes)/1e3, 100*e.SpillSavings)
	}
	pl, err := runPlacement()
	if err != nil {
		return err
	}
	doc.Placement = pl
	for _, p := range pl {
		fmt.Printf("placement/K=%-14d %8d clique groups -> %8d resolvable (gain %.1fx)\n",
			p.K, p.CliqueGroups, p.ResolvableGroups, p.GroupGain)
	}
	pt, err := runPartition(rows)
	if err != nil {
		return err
	}
	doc.Partition = pt
	for _, p := range pt {
		fmt.Printf("partition/%-16s uniform %.2fx -> sampled %.2fx imbalance  sample round %6.1f KB\n",
			p.Dist, p.UniformImbalance, p.SampledImbalance, float64(p.SampleRoundBytes)/1e3)
	}
	p, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(p, '\n'), 0o644)
}

// measure runs one workload repeatedly for at least benchtime, sampling
// the peak live heap throughout.
func measure(name string, spec cluster.Spec, benchtime time.Duration) (benchResult, *cluster.JobReport, error) {
	runtime.GC()
	stop := make(chan struct{})
	peakCh := make(chan uint64)
	go func() {
		var peak uint64
		var m runtime.MemStats
		for {
			select {
			case <-stop:
				peakCh <- peak
				return
			default:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
				time.Sleep(500 * time.Microsecond)
			}
		}
	}()

	var job *cluster.JobReport
	var err error
	iters := 0
	start := time.Now()
	for elapsed := time.Duration(0); iters == 0 || elapsed < benchtime; elapsed = time.Since(start) {
		job, err = cluster.RunLocal(spec)
		if err != nil {
			close(stop)
			<-peakCh
			return benchResult{}, nil, err
		}
		iters++
	}
	total := time.Since(start)
	close(stop)
	peak := <-peakCh

	nsPerOp := float64(total.Nanoseconds()) / float64(iters)
	return benchResult{
		Name:             name,
		Iterations:       iters,
		NsPerOp:          nsPerOp,
		MBPerSec:         float64(spec.Rows*kv.RecordSize) / 1e6 / (nsPerOp / 1e9),
		Rows:             spec.Rows,
		BytesShuffled:    job.ShuffleLoadBytes,
		ChunksShuffled:   job.ChunksShuffled,
		SpilledRuns:      job.SpilledRuns,
		SpilledRawBytes:  job.Spill.RawBytes,
		SpilledDiskBytes: job.Spill.DiskBytes,
		PeakHeapBytes:    peak,
	}, job, nil
}
