package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name string, doc benchFile) string {
	t.Helper()
	p, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, p, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// extsortSection is a minimal valid extsort section; every fresh document
// needs one, or compareDocs hard-fails.
func extsortSection() []extsortResult {
	return []extsortResult{{Name: "merge/uniform", Rows: 1000, MergeNsPerOp: 100,
		ComparesPerNext: 1.5, SpilledRawBytes: 10_000, SpilledDiskBytes: 8_000}}
}

// placementSection is a minimal valid placement section: resolvable beats
// clique at the largest K, so the structural gate passes.
func placementSection() []placementResult {
	return []placementResult{
		{K: 8, R: 2, CliqueGroups: 56, ResolvableGroups: 12, GroupGain: 56.0 / 12},
		{K: 16, R: 2, CliqueGroups: 560, ResolvableGroups: 56, GroupGain: 10},
	}
}

// partitionSection is a minimal valid partition section: the zipf entry
// clears the self-gate (uniform past the floor, sampled under the
// ceiling), so every fresh document built from it passes.
func partitionSection() []partitionResult {
	return []partitionResult{
		{Dist: "zipf", K: 8, Rows: 1000, UniformImbalance: 6.9, SampledImbalance: 1.1, SampleRoundBytes: 4096},
		{Dist: "sorted", K: 8, Rows: 1000, UniformImbalance: 8.0, SampledImbalance: 1.0, SampleRoundBytes: 4096},
	}
}

func TestCompareDocs(t *testing.T) {
	base := benchFile{Results: []benchResult{
		{Name: "terasort/serial", Rows: 1000, NsPerOp: 100, BytesShuffled: 10_000},
		{Name: "coded/serial", Rows: 1000, NsPerOp: 200, BytesShuffled: 6_000},
		{Name: "coded/chunked", Rows: 2000, NsPerOp: 300, BytesShuffled: 9_000},
		{Name: "terasort/extsort", Rows: 1000, NsPerOp: 400, BytesShuffled: 10_000, SpilledDiskBytes: 5_000},
	}, Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}
	fresh := benchFile{Results: []benchResult{
		// Slower but same shuffle: advisory only, no regression.
		{Name: "terasort/serial", Rows: 1000, NsPerOp: 300, BytesShuffled: 10_000},
		// Shuffle bytes more than doubled: the hard failure.
		{Name: "coded/serial", Rows: 1000, NsPerOp: 190, BytesShuffled: 13_000},
		// Row count differs from baseline: skipped, never a regression.
		{Name: "coded/chunked", Rows: 1000, NsPerOp: 100, BytesShuffled: 90_000},
		// Not in the baseline at all.
		{Name: "coded/new", Rows: 1000, NsPerOp: 100, BytesShuffled: 1},
		// Spilled disk bytes more than doubled: the other hard failure.
		{Name: "terasort/extsort", Rows: 1000, NsPerOp: 400, BytesShuffled: 10_000, SpilledDiskBytes: 11_000},
	}, Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}

	var out strings.Builder
	regressions := compareDocs(fresh, base, &out)
	if len(regressions) != 2 || regressions[0] != "coded/serial" || regressions[1] != "terasort/extsort" {
		t.Fatalf("regressions %v, want [coded/serial terasort/extsort]", regressions)
	}
	text := out.String()
	for _, want := range []string{
		"terasort/serial",
		"ns/op 3.00x (advisory)",
		"SHUFFLE REGRESSION",
		"SPILL REGRESSION",
		"rows 1000 vs baseline 2000, skipped",
		"new workload, no baseline",
		"extsort/merge/uniform",
		"spill disk bytes 1.00x  ok",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("compare output missing %q:\n%s", want, text)
		}
	}
}

// TestCompareExtsortGates: a fresh document without the extsort section
// hard-fails, and an extsort entry whose on-disk spill bytes more than
// double the baseline's hard-fails by name.
func TestCompareExtsortGates(t *testing.T) {
	base := benchFile{Extsort: extsortSection()}

	var out strings.Builder
	missing := compareDocs(benchFile{Placement: placementSection(), Partition: partitionSection()}, base, &out)
	if len(missing) != 1 || !strings.Contains(missing[0], "section missing") {
		t.Fatalf("missing-section regressions %v", missing)
	}
	if !strings.Contains(out.String(), "EXTSORT SECTION MISSING") {
		t.Fatalf("output:\n%s", out.String())
	}

	fresh := benchFile{Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}
	fresh.Extsort[0].SpilledDiskBytes = 3 * base.Extsort[0].SpilledDiskBytes
	out.Reset()
	regressions := compareDocs(fresh, base, &out)
	if len(regressions) != 1 || regressions[0] != "extsort/merge/uniform" {
		t.Fatalf("spill regressions %v, want extsort/merge/uniform", regressions)
	}
	if !strings.Contains(out.String(), "SPILL REGRESSION") {
		t.Fatalf("output:\n%s", out.String())
	}

	// A baseline predating the section compares nothing but still requires
	// the fresh section to exist.
	out.Reset()
	if r := compareDocs(benchFile{Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}, benchFile{}, &out); len(r) != 0 {
		t.Fatalf("old baseline regressed: %v", r)
	}
	if !strings.Contains(out.String(), "new entry, no baseline") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// TestComparePlacementGates: a fresh document without the placement
// section hard-fails, and so does one where the resolvable design stops
// beating the clique group count at the sweep's largest K. The structural
// win at smaller Ks is not gated (at K=2r the two schemes are close), and
// a baseline predating the section only costs the advisory gain line.
func TestComparePlacementGates(t *testing.T) {
	base := benchFile{Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}

	var out strings.Builder
	missing := compareDocs(benchFile{Extsort: extsortSection(), Partition: partitionSection()}, base, &out)
	if len(missing) != 1 || !strings.Contains(missing[0], "placement(section missing)") {
		t.Fatalf("missing-section regressions %v", missing)
	}
	if !strings.Contains(out.String(), "PLACEMENT SECTION MISSING") {
		t.Fatalf("output:\n%s", out.String())
	}

	// Resolvable no better than clique at the largest K: the hard gate.
	fresh := benchFile{Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}
	fresh.Placement[1].ResolvableGroups = fresh.Placement[1].CliqueGroups
	out.Reset()
	regressions := compareDocs(fresh, base, &out)
	if len(regressions) != 1 || regressions[0] != "placement(K=16)" {
		t.Fatalf("placement regressions %v, want [placement(K=16)]", regressions)
	}
	if !strings.Contains(out.String(), "PLACEMENT REGRESSION") {
		t.Fatalf("output:\n%s", out.String())
	}

	// A smaller-K entry losing the win is not gated; only the largest K is.
	fresh = benchFile{Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}
	fresh.Placement[0].ResolvableGroups = fresh.Placement[0].CliqueGroups + 1
	out.Reset()
	if r := compareDocs(fresh, base, &out); len(r) != 0 {
		t.Fatalf("small-K entry gated: %v", r)
	}

	// Baseline without the section: fresh section still required, compared
	// without the advisory gain line.
	out.Reset()
	if r := compareDocs(base, benchFile{Extsort: extsortSection()}, &out); len(r) != 0 {
		t.Fatalf("old baseline regressed: %v", r)
	}
	if strings.Contains(out.String(), "gain vs baseline") {
		t.Fatalf("advisory gain printed without a baseline:\n%s", out.String())
	}
}

// TestComparePartitionGates: a fresh document without the partition
// section hard-fails, and so does a zipf entry whose sampled imbalance
// breaches the ceiling, whose uniform imbalance is too tame to gate, or
// any distribution where sampled partitions worse than uniform (fresh or
// baseline).
func TestComparePartitionGates(t *testing.T) {
	base := benchFile{Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}

	var out strings.Builder
	missing := compareDocs(benchFile{Extsort: extsortSection(), Placement: placementSection()}, base, &out)
	if len(missing) != 1 || !strings.Contains(missing[0], "partition(section missing)") {
		t.Fatalf("missing-section regressions %v", missing)
	}
	if !strings.Contains(out.String(), "PARTITION SECTION MISSING") {
		t.Fatalf("output:\n%s", out.String())
	}

	// Sampled imbalance above the zipf ceiling: the hard gate.
	fresh := benchFile{Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}
	fresh.Partition[0].SampledImbalance = zipfSampledCeiling + 0.1
	out.Reset()
	regressions := compareDocs(fresh, base, &out)
	if len(regressions) != 1 || regressions[0] != "partition/zipf" {
		t.Fatalf("ceiling regressions %v, want [partition/zipf]", regressions)
	}
	if !strings.Contains(out.String(), "PARTITION REGRESSION") {
		t.Fatalf("output:\n%s", out.String())
	}

	// Uniform imbalance at or under the floor: the input stopped being
	// skewed enough to prove anything, also gated.
	fresh = benchFile{Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}
	fresh.Partition[0].UniformImbalance = zipfUniformFloor - 0.5
	out.Reset()
	if r := compareDocs(fresh, base, &out); len(r) != 1 || r[0] != "partition/zipf" {
		t.Fatalf("floor regressions %v, want [partition/zipf]", r)
	}

	// Sampled no better than uniform on a non-zipf entry: gated too.
	fresh = benchFile{Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}
	fresh.Partition[1].SampledImbalance = fresh.Partition[1].UniformImbalance
	out.Reset()
	if r := compareDocs(fresh, base, &out); len(r) != 1 || r[0] != "partition/sorted" {
		t.Fatalf("worse-than-uniform regressions %v, want [partition/sorted]", r)
	}

	// Sampled regressing above the baseline's uniform: the -compare gate
	// ISSUE asks for (sampled imbalance on zipf above uniform's).
	fresh = benchFile{Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}
	fresh.Partition[0].UniformImbalance = 8.0
	fresh.Partition[0].SampledImbalance = 1.2 // legal in isolation
	weak := benchFile{Partition: []partitionResult{
		{Dist: "zipf", K: 8, Rows: 1000, UniformImbalance: 1.1, SampledImbalance: 1.05},
	}}
	out.Reset()
	if r := compareDocs(fresh, weak, &out); len(r) != 1 || r[0] != "partition/zipf" {
		t.Fatalf("baseline-uniform regressions %v, want [partition/zipf]", r)
	}

	// A healthy doc against a baseline predating the section passes, with
	// the advisory line suppressed.
	out.Reset()
	if r := compareDocs(base, benchFile{Extsort: extsortSection(), Placement: placementSection()}, &out); len(r) != 0 {
		t.Fatalf("old baseline regressed: %v", r)
	}
	if strings.Contains(out.String(), "sampled vs baseline") {
		t.Fatalf("advisory line printed without a baseline:\n%s", out.String())
	}
}

func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	doc := benchFile{Results: []benchResult{
		{Name: "terasort/serial", Rows: 500, NsPerOp: 100, BytesShuffled: 4_000},
	}, Extsort: extsortSection(), Placement: placementSection(), Partition: partitionSection()}
	freshPath := writeDoc(t, dir, "fresh.json", doc)
	basePath := writeDoc(t, dir, "base.json", doc)
	var out strings.Builder
	regressions, err := compareFiles(freshPath, basePath, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("identical docs regressed: %v", regressions)
	}
	if !strings.Contains(out.String(), "shuffle bytes 1.00x  spill disk bytes 0.00x  ok") {
		t.Fatalf("output:\n%s", out.String())
	}
	if _, err := compareFiles(filepath.Join(dir, "missing.json"), basePath, &out); err == nil {
		t.Fatal("missing fresh file did not error")
	}
}
