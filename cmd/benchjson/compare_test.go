package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDoc(t *testing.T, dir, name string, doc benchFile) string {
	t.Helper()
	p, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, p, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareDocs(t *testing.T) {
	base := benchFile{Results: []benchResult{
		{Name: "terasort/serial", Rows: 1000, NsPerOp: 100, BytesShuffled: 10_000},
		{Name: "coded/serial", Rows: 1000, NsPerOp: 200, BytesShuffled: 6_000},
		{Name: "coded/chunked", Rows: 2000, NsPerOp: 300, BytesShuffled: 9_000},
	}}
	fresh := benchFile{Results: []benchResult{
		// Slower but same shuffle: advisory only, no regression.
		{Name: "terasort/serial", Rows: 1000, NsPerOp: 300, BytesShuffled: 10_000},
		// Shuffle bytes more than doubled: the hard failure.
		{Name: "coded/serial", Rows: 1000, NsPerOp: 190, BytesShuffled: 13_000},
		// Row count differs from baseline: skipped, never a regression.
		{Name: "coded/chunked", Rows: 1000, NsPerOp: 100, BytesShuffled: 90_000},
		// Not in the baseline at all.
		{Name: "coded/new", Rows: 1000, NsPerOp: 100, BytesShuffled: 1},
	}}

	var out strings.Builder
	regressions := compareDocs(fresh, base, &out)
	if len(regressions) != 1 || regressions[0] != "coded/serial" {
		t.Fatalf("regressions %v, want only coded/serial", regressions)
	}
	text := out.String()
	for _, want := range []string{
		"terasort/serial",
		"ns/op 3.00x (advisory)",
		"SHUFFLE REGRESSION",
		"rows 1000 vs baseline 2000, skipped",
		"new workload, no baseline",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("compare output missing %q:\n%s", want, text)
		}
	}
}

func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	doc := benchFile{Results: []benchResult{
		{Name: "terasort/serial", Rows: 500, NsPerOp: 100, BytesShuffled: 4_000},
	}}
	freshPath := writeDoc(t, dir, "fresh.json", doc)
	basePath := writeDoc(t, dir, "base.json", doc)
	var out strings.Builder
	regressions, err := compareFiles(freshPath, basePath, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("identical docs regressed: %v", regressions)
	}
	if !strings.Contains(out.String(), "shuffle bytes 1.00x  ok") {
		t.Fatalf("output:\n%s", out.String())
	}
	if _, err := compareFiles(filepath.Join(dir, "missing.json"), basePath, &out); err == nil {
		t.Fatal("missing fresh file did not error")
	}
}
