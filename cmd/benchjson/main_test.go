package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"codedterasort/internal/kv"
)

// TestRunEmitsValidJSON: a fast run produces a parseable document with one
// result per workload, each carrying the tracked metrics, and the extsort
// workloads actually spilled.
func TestRunEmitsValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(out, 4000, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if want := len(workloads(4000, "")); len(doc.Results) != want {
		t.Fatalf("%d results, want %d", len(doc.Results), want)
	}
	// Host metadata distinguishes 1-CPU container numbers from real
	// multicore runs.
	if doc.Host.GoVersion == "" || doc.Host.GOOS == "" || doc.Host.GOARCH == "" ||
		doc.Host.NumCPU <= 0 || doc.Host.GoMaxProcs <= 0 {
		t.Fatalf("incomplete host metadata: %+v", doc.Host)
	}
	for _, r := range doc.Results {
		if r.NsPerOp <= 0 || r.Iterations <= 0 || r.PeakHeapBytes == 0 {
			t.Fatalf("%s: degenerate metrics %+v", r.Name, r)
		}
		if r.BytesShuffled <= 0 {
			t.Fatalf("%s: no shuffle bytes", r.Name)
		}
		if r.Name == "terasort/extsort" || r.Name == "coded/extsort" {
			if r.SpilledRuns == 0 {
				t.Fatalf("%s: spilled nothing", r.Name)
			}
			// The compact writer's per-block v1 fallback bounds disk bytes
			// at raw plus framing, even on incompressible uniform keys.
			if r.SpilledRawBytes == 0 || r.SpilledDiskBytes == 0 {
				t.Fatalf("%s: no spill byte accounting %+v", r.Name, r)
			}
			if r.SpilledDiskBytes > r.SpilledRawBytes+r.SpilledRawBytes/20 {
				t.Fatalf("%s: spill framing overhead above 5%%: %d disk vs %d raw",
					r.Name, r.SpilledDiskBytes, r.SpilledRawBytes)
			}
		}
	}
	// The extsort merge-path section: one entry per key workload, each with
	// live comparison counters and spill accounting. Offset-value codes
	// decide the large majority of comparisons on distinct-key inputs; the
	// duplicate-heavy workload is where prefix truncation shrinks the runs.
	if len(doc.Extsort) != 3 {
		t.Fatalf("extsort section: %d entries, want 3", len(doc.Extsort))
	}
	for _, e := range doc.Extsort {
		if e.MergeNsPerOp <= 0 || e.SpilledRuns < 2 || e.ComparesPerNext <= 0 {
			t.Fatalf("degenerate extsort entry %+v", e)
		}
		if e.SpilledDiskBytes > e.SpilledRawBytes+e.SpilledRawBytes/20 {
			t.Fatalf("%s: spill framing overhead above 5%%: %d disk vs %d raw",
				e.Name, e.SpilledDiskBytes, e.SpilledRawBytes)
		}
		switch e.Name {
		case "merge/uniform":
			if e.OVCDecidedFraction <= 0.5 {
				t.Fatalf("%s: offset-value codes decided only %.0f%% of merge comparisons",
					e.Name, 100*e.OVCDecidedFraction)
			}
		case "merge/dupkeys":
			if e.SpillSavings <= 0 {
				t.Fatalf("%s: prefix truncation saved nothing: %d disk vs %d raw",
					e.Name, e.SpilledDiskBytes, e.SpilledRawBytes)
			}
		}
	}
	// The fault-resilience sections: one straggler and one recovery entry
	// per engine, with sane shapes (the straggled run cannot be faster
	// than healthy minus noise; the recovered run took 2 attempts).
	if len(doc.Straggler) != 2 || len(doc.Recovery) != 2 {
		t.Fatalf("straggler/recovery sections: %d/%d entries, want 2/2",
			len(doc.Straggler), len(doc.Recovery))
	}
	for _, s := range doc.Straggler {
		if s.HealthyNs <= 0 || s.StraggledNs <= 0 || s.Factor != stragglerFactor {
			t.Fatalf("degenerate straggler entry %+v", s)
		}
	}
	for _, r := range doc.Recovery {
		// The recovered run re-executes a whole attempt, so it should cost
		// more than healthy — but at this benchtime the two single-shot
		// timings can invert under load, so only a recovered run faster
		// than half the healthy one marks a broken measurement.
		if r.HealthyNs <= 0 || r.RecoveredNs <= r.HealthyNs/2 || r.Attempts != 2 {
			t.Fatalf("degenerate recovery entry %+v", r)
		}
	}
	// The partitioning-policy section: one entry per skewed distribution,
	// each run really sampled (positive round bytes) and the zipf entry
	// clearing the acceptance shape — uniform past the floor, sampled under
	// the ceiling.
	if want := len(kv.SkewedDistributions); len(doc.Partition) != want {
		t.Fatalf("partition section: %d entries, want %d", len(doc.Partition), want)
	}
	for _, p := range doc.Partition {
		if p.UniformImbalance < 1 || p.SampledImbalance < 1 || p.SampleRoundBytes <= 0 {
			t.Fatalf("degenerate partition entry %+v", p)
		}
		if p.Dist == "zipf" {
			if p.UniformImbalance <= zipfUniformFloor {
				t.Fatalf("zipf uniform imbalance %.2fx not past the %.1fx floor", p.UniformImbalance, zipfUniformFloor)
			}
			if p.SampledImbalance > zipfSampledCeiling {
				t.Fatalf("zipf sampled imbalance %.2fx above the %.1fx ceiling", p.SampledImbalance, zipfSampledCeiling)
			}
		}
	}
}
