package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// shuffleRegressionFactor is the only hard-failing comparison: wall-clock
// is too noisy for shared CI runners, but the shuffle byte counts are
// deterministic for a given spec, so a workload moving more than this
// multiple of its baseline's bytes means the communication-load story of
// the paper regressed, not the machine.
const shuffleRegressionFactor = 2.0

// spillRegressionFactor mirrors the shuffle gate for the spill path: the
// on-disk bytes of a workload's runs and spools are deterministic for a
// given spec, so a workload writing more than this multiple of its
// baseline's spilled disk bytes means the compact run format (or the spill
// policy above it) regressed.
const spillRegressionFactor = 2.0

// compareFiles loads a fresh benchmark document and a committed baseline
// and diffs the pipeline workloads by name. Timing ratios are printed as
// advisory only; the returned list names the workloads whose shuffle
// bytes regressed past shuffleRegressionFactor.
func compareFiles(freshPath, basePath string, w io.Writer) ([]string, error) {
	var fresh, base benchFile
	for path, doc := range map[string]*benchFile{freshPath: &fresh, basePath: &base} {
		p, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(p, doc); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return compareDocs(fresh, base, w), nil
}

// compareDocs diffs fresh against base workload by workload. Workloads
// are matched by name and only compared when their row counts agree (a
// -rows override against a full baseline would make every ratio
// meaningless).
func compareDocs(fresh, base benchFile, w io.Writer) []string {
	baseline := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	var regressions []string
	for _, r := range fresh.Results {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s new workload, no baseline\n", r.Name)
			continue
		}
		if b.Rows != r.Rows {
			fmt.Fprintf(w, "%-28s rows %d vs baseline %d, skipped\n", r.Name, r.Rows, b.Rows)
			continue
		}
		nsRatio := ratio(r.NsPerOp, b.NsPerOp)
		bytesRatio := ratio(float64(r.BytesShuffled), float64(b.BytesShuffled))
		verdict := "ok"
		if b.BytesShuffled > 0 && float64(r.BytesShuffled) > shuffleRegressionFactor*float64(b.BytesShuffled) {
			verdict = fmt.Sprintf("SHUFFLE REGRESSION (>%.0fx)", shuffleRegressionFactor)
			regressions = append(regressions, r.Name)
		} else if b.SpilledDiskBytes > 0 && float64(r.SpilledDiskBytes) > spillRegressionFactor*float64(b.SpilledDiskBytes) {
			verdict = fmt.Sprintf("SPILL REGRESSION (>%.0fx)", spillRegressionFactor)
			regressions = append(regressions, r.Name)
		}
		fmt.Fprintf(w, "%-28s ns/op %.2fx (advisory)  shuffle bytes %.2fx  spill disk bytes %.2fx  %s\n",
			r.Name, nsRatio, bytesRatio, ratio(float64(r.SpilledDiskBytes), float64(b.SpilledDiskBytes)), verdict)
	}
	regressions = append(regressions, compareExtsort(fresh, base, w)...)
	regressions = append(regressions, comparePlacement(fresh, base, w)...)
	regressions = append(regressions, comparePartition(fresh, base, w)...)
	return regressions
}

// zipfUniformFloor and zipfSampledCeiling are the partition section's
// self-gate on the zipf entry: the skew must really defeat uniform
// partitioning (max reducer past twice the mean — otherwise the test input
// stopped being skewed and the section proves nothing), and sampled
// partitioning must hold the same input under the balance ceiling. Both
// sides are deterministic functions of the spec, so they gate hard.
const (
	zipfUniformFloor   = 2.0
	zipfSampledCeiling = 1.3
)

// comparePartition checks the partitioning-policy section. A fresh
// document without the section hard-fails — the skew-balance numbers are
// part of the tracked trajectory. The section self-gates on its zipf
// entry (uniform imbalance above zipfUniformFloor, sampled at or below
// zipfSampledCeiling, and sampled strictly better than uniform); against a
// baseline with the section, a sampled imbalance that regressed above the
// baseline's uniform imbalance on any matched distribution also fails —
// sampling that partitions worse than the policy it replaces is a
// regression whatever the absolute number.
func comparePartition(fresh, base benchFile, w io.Writer) []string {
	var regressions []string
	if len(fresh.Partition) == 0 {
		fmt.Fprintf(w, "%-28s PARTITION SECTION MISSING\n", "partition")
		return append(regressions, "partition(section missing)")
	}
	baseline := make(map[string]partitionResult, len(base.Partition))
	for _, p := range base.Partition {
		baseline[p.Dist] = p
	}
	for _, p := range fresh.Partition {
		verdict := "ok"
		switch {
		case p.Dist == "zipf" && p.UniformImbalance <= zipfUniformFloor:
			verdict = fmt.Sprintf("PARTITION REGRESSION (zipf uniform imbalance %.2fx <= %.1fx: input not skewed enough to gate)",
				p.UniformImbalance, zipfUniformFloor)
		case p.Dist == "zipf" && p.SampledImbalance > zipfSampledCeiling:
			verdict = fmt.Sprintf("PARTITION REGRESSION (zipf sampled imbalance %.2fx > %.1fx ceiling)",
				p.SampledImbalance, zipfSampledCeiling)
		case p.SampledImbalance >= p.UniformImbalance && p.UniformImbalance > 1:
			verdict = fmt.Sprintf("PARTITION REGRESSION (sampled %.2fx >= uniform %.2fx)",
				p.SampledImbalance, p.UniformImbalance)
		}
		b, matched := baseline[p.Dist]
		if verdict == "ok" && matched && b.Rows == p.Rows &&
			b.UniformImbalance > 0 && p.SampledImbalance > b.UniformImbalance {
			verdict = fmt.Sprintf("PARTITION REGRESSION (sampled %.2fx above baseline uniform %.2fx)",
				p.SampledImbalance, b.UniformImbalance)
		}
		if verdict != "ok" {
			regressions = append(regressions, "partition/"+p.Dist)
		}
		note := ""
		if matched && b.SampledImbalance > 0 {
			note = fmt.Sprintf("  sampled vs baseline %.2fx (advisory)", p.SampledImbalance/b.SampledImbalance)
		}
		fmt.Fprintf(w, "partition/%-18s uniform %.2fx, sampled %.2fx, sample round %d B%s  %s\n",
			p.Dist, p.UniformImbalance, p.SampledImbalance, p.SampleRoundBytes, note, verdict)
	}
	return regressions
}

// comparePlacement checks the clique-vs-resolvable section. Like extsort,
// a fresh document without the section hard-fails: the placement counts
// are part of the tracked trajectory. The section also gates on its own
// contents — at the sweep's largest K, the resolvable design must beat the
// clique scheme's group count (that scaling win is the construction's
// whole point; losing it means the design generator regressed). Against a
// baseline with the section, a shrunk group gain at any matched K prints
// as advisory.
func comparePlacement(fresh, base benchFile, w io.Writer) []string {
	var regressions []string
	if len(fresh.Placement) == 0 {
		fmt.Fprintf(w, "%-28s PLACEMENT SECTION MISSING\n", "placement")
		return append(regressions, "placement(section missing)")
	}
	largest := fresh.Placement[0]
	for _, p := range fresh.Placement[1:] {
		if p.K > largest.K {
			largest = p
		}
	}
	baseline := make(map[int]placementResult, len(base.Placement))
	for _, p := range base.Placement {
		baseline[p.K] = p
	}
	for _, p := range fresh.Placement {
		verdict := "ok"
		if p.K == largest.K && p.ResolvableGroups >= p.CliqueGroups {
			verdict = fmt.Sprintf("PLACEMENT REGRESSION (resolvable %d groups >= clique %d at K=%d)",
				p.ResolvableGroups, p.CliqueGroups, p.K)
			regressions = append(regressions, fmt.Sprintf("placement(K=%d)", p.K))
		}
		gainNote := ""
		if b, ok := baseline[p.K]; ok && b.GroupGain > 0 {
			gainNote = fmt.Sprintf("  gain vs baseline %.2fx (advisory)", p.GroupGain/b.GroupGain)
		}
		fmt.Fprintf(w, "placement/K=%-16d clique %8d groups, resolvable %8d (gain %.1fx)%s  %s\n",
			p.K, p.CliqueGroups, p.ResolvableGroups, p.GroupGain, gainNote, verdict)
	}
	return regressions
}

// compareExtsort diffs the external-sort section. A fresh document without
// the section is itself a hard failure — the merge-path numbers are part of
// the tracked trajectory, so a regeneration that silently drops them must
// not pass the gate. Against a baseline that has the section, the on-disk
// spill bytes gate hard (deterministic, like shuffle bytes); merge timing
// and the comparison split print as advisory.
func compareExtsort(fresh, base benchFile, w io.Writer) []string {
	var regressions []string
	if len(fresh.Extsort) == 0 {
		fmt.Fprintf(w, "%-28s EXTSORT SECTION MISSING\n", "extsort")
		return append(regressions, "extsort(section missing)")
	}
	baseline := make(map[string]extsortResult, len(base.Extsort))
	for _, e := range base.Extsort {
		baseline[e.Name] = e
	}
	for _, e := range fresh.Extsort {
		b, ok := baseline[e.Name]
		if !ok {
			fmt.Fprintf(w, "extsort/%-20s new entry, no baseline\n", e.Name)
			continue
		}
		if b.Rows != e.Rows {
			fmt.Fprintf(w, "extsort/%-20s rows %d vs baseline %d, skipped\n", e.Name, e.Rows, b.Rows)
			continue
		}
		verdict := "ok"
		if b.SpilledDiskBytes > 0 && float64(e.SpilledDiskBytes) > spillRegressionFactor*float64(b.SpilledDiskBytes) {
			verdict = fmt.Sprintf("SPILL REGRESSION (>%.0fx)", spillRegressionFactor)
			regressions = append(regressions, "extsort/"+e.Name)
		}
		fmt.Fprintf(w, "extsort/%-20s merge ns/op %.2fx (advisory)  cmp/next %.2fx (advisory)  spill disk bytes %.2fx  %s\n",
			e.Name, ratio(e.MergeNsPerOp, b.MergeNsPerOp),
			ratio(e.ComparesPerNext, b.ComparesPerNext),
			ratio(float64(e.SpilledDiskBytes), float64(b.SpilledDiskBytes)), verdict)
	}
	return regressions
}

// ratio guards the zero-baseline division.
func ratio(fresh, base float64) float64 {
	if base == 0 {
		return 0
	}
	return fresh / base
}
