package main

import (
	"os"
	"path/filepath"
	"testing"

	"codedterasort/internal/extsort"
	"codedterasort/internal/kv"
)

func TestRunWritesExactRecords(t *testing.T) {
	out := filepath.Join(t.TempDir(), "input.dat")
	if err := run(1000, 7, false, out, false); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := kv.NewRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := kv.NewGenerator(7, kv.DistUniform).Generate(0, 1000)
	if !got.Equal(want) {
		t.Fatalf("file content differs from generator output")
	}
}

func TestRunTextMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "preview.txt")
	if err := run(3, 1, true, out, true); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) == 0 {
		t.Fatal("empty text preview")
	}
}

func TestRunRejectsNegativeRows(t *testing.T) {
	if err := run(-1, 1, false, "", false); err == nil {
		t.Fatal("negative rows accepted")
	}
}

// TestDiskModeWritesPartLayout: -disk writes K part files whose
// concatenation is exactly the generated input, split at the File
// Placement bounds.
func TestDiskModeWritesPartLayout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "input")
	const rows, seed, k = 1003, 11, 4
	if err := runDisk(rows, seed, false, dir, k); err != nil {
		t.Fatal(err)
	}
	gen := kv.NewGenerator(seed, kv.DistUniform)
	bounds := kv.SplitRows(rows, k)
	for i := 0; i < k; i++ {
		buf, err := os.ReadFile(extsort.PartFile(dir, i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := kv.NewRecords(buf)
		if err != nil {
			t.Fatal(err)
		}
		want := gen.Generate(bounds[i], bounds[i+1]-bounds[i])
		if !got.Equal(want) {
			t.Fatalf("part %d differs from generator rows [%d,%d)", i, bounds[i], bounds[i+1])
		}
	}
}

// TestDiskModeValidation: bad -disk parameters are rejected.
func TestDiskModeValidation(t *testing.T) {
	if err := runDisk(10, 1, false, "", 4); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := runDisk(10, 1, false, t.TempDir(), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := runDisk(-1, 1, false, t.TempDir(), 2); err == nil {
		t.Fatal("negative rows accepted")
	}
}
