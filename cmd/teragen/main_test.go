package main

import (
	"os"
	"path/filepath"
	"testing"

	"codedterasort/internal/kv"
)

func TestRunWritesExactRecords(t *testing.T) {
	out := filepath.Join(t.TempDir(), "input.dat")
	if err := run(1000, 7, false, out, false); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	got, err := kv.NewRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := kv.NewGenerator(7, kv.DistUniform).Generate(0, 1000)
	if !got.Equal(want) {
		t.Fatalf("file content differs from generator output")
	}
}

func TestRunTextMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "preview.txt")
	if err := run(3, 1, true, out, true); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) == 0 {
		t.Fatal("empty text preview")
	}
}

func TestRunRejectsNegativeRows(t *testing.T) {
	if err := run(-1, 1, false, "", false); err == nil {
		t.Fatal("negative rows accepted")
	}
}
