// Command teragen generates TeraGen-format input data: 100-byte records
// with a 10-byte key and a 90-byte value (the format the paper sorts,
// Section V-A). Output is raw records to a file or stdout; -text prints a
// human-readable preview instead; -disk writes the K-part on-disk layout
// (part-00000 ... part-000NN under -out, one file per worker) that the
// engines' -indir flag consumes for real out-of-core runs.
//
// Usage:
//
//	teragen -rows 1000000 -seed 42 -out input.dat
//	teragen -rows 5 -text
//	teragen -rows 10000000 -k 8 -disk -out /data/input
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"codedterasort/internal/extsort"
	"codedterasort/internal/kv"
)

func main() {
	rows := flag.Int64("rows", 1000, "number of records to generate")
	seed := flag.Uint64("seed", 2017, "generator seed")
	skewed := flag.Bool("skewed", false, "use the skewed key distribution")
	out := flag.String("out", "", "output file (default stdout); with -disk, the output directory")
	text := flag.Bool("text", false, "print a human-readable preview instead of raw records")
	disk := flag.Bool("disk", false, "write K part files under -out (the engines' -indir layout)")
	k := flag.Int("k", 4, "number of part files in -disk mode")
	flag.Parse()

	var err error
	if *disk {
		err = runDisk(*rows, *seed, *skewed, *out, *k)
	} else {
		err = run(*rows, *seed, *skewed, *out, *text)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "teragen:", err)
		os.Exit(1)
	}
}

func run(rows int64, seed uint64, skewed bool, out string, text bool) error {
	if rows < 0 {
		return fmt.Errorf("negative row count %d", rows)
	}
	gen := kv.NewGenerator(seed, dist(skewed))

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	if text {
		for i := int64(0); i < rows; i++ {
			r := gen.Generate(i, 1)
			fmt.Fprintf(bw, "row %8d  key=%x  value=%s...\n", i, r.Key(0), r.Value(0)[:24])
		}
		return nil
	}
	return writeRows(bw, gen, 0, rows)
}

// runDisk writes the K-part input layout: file i holds the rows of the
// File Placement split (kv.SplitRows), exactly what worker i of a K-node
// TeraSort stores, so an -indir run sorts the same data a generated run
// with the same seed and rows would.
func runDisk(rows int64, seed uint64, skewed bool, dir string, k int) error {
	if rows < 0 {
		return fmt.Errorf("negative row count %d", rows)
	}
	if k <= 0 {
		return fmt.Errorf("non-positive part count %d", k)
	}
	if dir == "" {
		return fmt.Errorf("-disk requires -out directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gen := kv.NewGenerator(seed, dist(skewed))
	bounds := kv.SplitRows(rows, k)
	for i := 0; i < k; i++ {
		f, err := os.Create(extsort.PartFile(dir, i))
		if err != nil {
			return err
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		err = writeRows(bw, gen, bounds[i], bounds[i+1])
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeRows streams rows [first, last) to w in bounded blocks.
func writeRows(w io.Writer, gen *kv.Generator, first, last int64) error {
	const block = 1 << 14
	return gen.GenerateBlocks(first, last-first, block, func(r kv.Records) error {
		_, err := w.Write(r.Bytes())
		return err
	})
}

func dist(skewed bool) kv.Distribution {
	if skewed {
		return kv.DistSkewed
	}
	return kv.DistUniform
}
