// Command teragen generates TeraGen-format input data: 100-byte records
// with a 10-byte key and a 90-byte value (the format the paper sorts,
// Section V-A). Output is raw records to a file or stdout; -text prints a
// human-readable preview instead.
//
// Usage:
//
//	teragen -rows 1000000 -seed 42 -out input.dat
//	teragen -rows 5 -text
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"codedterasort/internal/kv"
)

func main() {
	rows := flag.Int64("rows", 1000, "number of records to generate")
	seed := flag.Uint64("seed", 2017, "generator seed")
	skewed := flag.Bool("skewed", false, "use the skewed key distribution")
	out := flag.String("out", "", "output file (default stdout)")
	text := flag.Bool("text", false, "print a human-readable preview instead of raw records")
	flag.Parse()

	if err := run(*rows, *seed, *skewed, *out, *text); err != nil {
		fmt.Fprintln(os.Stderr, "teragen:", err)
		os.Exit(1)
	}
}

func run(rows int64, seed uint64, skewed bool, out string, text bool) error {
	if rows < 0 {
		return fmt.Errorf("negative row count %d", rows)
	}
	dist := kv.DistUniform
	if skewed {
		dist = kv.DistSkewed
	}
	gen := kv.NewGenerator(seed, dist)

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	if text {
		for i := int64(0); i < rows; i++ {
			r := gen.Generate(i, 1)
			fmt.Fprintf(bw, "row %8d  key=%x  value=%s...\n", i, r.Key(0), r.Value(0)[:24])
		}
		return nil
	}
	const chunk = 1 << 14
	for first := int64(0); first < rows; first += chunk {
		n := rows - first
		if n > chunk {
			n = chunk
		}
		r := gen.Generate(first, n)
		if _, err := bw.Write(r.Bytes()); err != nil {
			return err
		}
	}
	return nil
}
