#!/bin/sh
# The standard gate: build + vet + gofmt cleanliness + staticcheck (when
# installed) + docs gate (every package/command carries a godoc comment) +
# race-enabled tests in shuffled order + the coverage floor + the
# end-to-end service smoke, plus a govulncheck pass against the
# known-vulnerability database when the tool is installed (CI installs it;
# offline machines skip with a notice).
# Equivalent to `make ci` for environments without make.
set -eux
go build ./...
go vet ./...
test -z "$(gofmt -l .)"
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2025.1.1)"
fi
# Docs gate. (The examples compile smoke needs no separate step here:
# `go build ./...` and `go vet ./...` above already cover examples/.)
for dir in $(go list -f '{{.Dir}}' ./...); do
	files=$(find "$dir" -maxdepth 1 -name '*.go' ! -name '*_test.go')
	if ! grep -qE '^// (Package|Command) ' $files; then
		echo "docs gate: missing package doc comment in $dir"
		exit 1
	fi
done
go test -race -shuffle=on ./...
# Large-K smoke (mirrors `make largek-smoke`): the K=64 resolvable sort
# over multiplexed logical ranks, checksum-tied to the uncoded oracle. The
# race run above already includes it; this re-run pins the gate by name so
# a test rename cannot silently drop the coverage.
go test -run=TestLargeKResolvableMux -count=1 ./internal/cluster/
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi
# Coverage floor on the framework-critical packages (mirrors `make
# cover-gate`): the stage-graph runtime, the MapReduce layer, the
# multi-tenant serving layer, and the partitioner must keep >= 80%
# statement coverage.
for pkg in ./internal/engine ./internal/mapreduce ./internal/service ./internal/partition; do
	pct=$(go test -cover "$pkg" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p')
	if [ -z "$pct" ] || [ "$(awk "BEGIN{print ($pct >= 80) ? 1 : 0}")" -ne 1 ]; then
		echo "cover gate: $pkg at ${pct:-?}% (< 80% floor)"
		exit 1
	fi
	echo "cover gate: $pkg at $pct% (floor 80%)"
done
# End-to-end service smoke: sortd + sortctl, concurrent multi-tenant jobs,
# metrics scrape, SIGTERM drain. Every wait inside is bounded.
./scripts/service_smoke.sh
