#!/bin/sh
# The standard gate: build + vet + gofmt cleanliness + race-enabled tests,
# plus a govulncheck pass against the known-vulnerability database when the
# tool is installed (CI installs it; offline machines skip with a notice).
# Equivalent to `make ci` for environments without make.
set -eux
go build ./...
go vet ./...
test -z "$(gofmt -l .)"
go test -race ./...
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./...
else
	echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi
